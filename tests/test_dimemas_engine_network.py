"""Unit tests of the event loop and the network resource model."""

import pytest

from repro.dimemas.engine import EventLoop
from repro.dimemas.machine import MachineConfig
from repro.dimemas.network import Network, Transfer


class TestEventLoop:
    def test_time_order(self):
        loop, out = EventLoop(), []
        loop.at(2e-6, lambda: out.append("b"))
        loop.at(1e-6, lambda: out.append("a"))
        loop.run()
        assert out == ["a", "b"]

    def test_fifo_on_ties(self):
        loop, out = EventLoop(), []
        for k in range(5):
            loop.at(1e-6, lambda k=k: out.append(k))
        loop.run()
        assert out == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.at(5e-6, lambda: seen.append(loop.now))
        end = loop.run()
        assert seen == [5e-6] and end == 5e-6

    def test_after_relative(self):
        loop, seen = EventLoop(), []
        def first():
            loop.after(3e-6, lambda: seen.append(loop.now))
        loop.at(1e-6, first)
        loop.run()
        assert seen == [pytest.approx(4e-6)]

    def test_scheduling_into_past_rejected(self):
        loop = EventLoop()
        loop.at(1e-3, lambda: None)
        def bad():
            loop.at(0.0, lambda: None)
        loop.at(2e-3, bad)
        with pytest.raises(ValueError, match="past"):
            loop.run()

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().at(float("nan"), lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().after(-1.0, lambda: None)

    def test_executed_counter(self):
        loop = EventLoop()
        for _ in range(3):
            loop.at(0.0, lambda: None)
        loop.run()
        assert loop.executed == 3 and loop.pending == 0


def make_net(loop, nranks=4, **over):
    cfg = MachineConfig(bandwidth_mbps=100.0, latency=10e-6, **over)
    return Network(loop, nranks, cfg), cfg


class TestNetwork:
    def test_uncontended_transfer_timing(self):
        loop = EventLoop()
        net, cfg = make_net(loop)
        tr = Transfer(src=0, dst=1, size=1000)
        times = {}
        tr.on_injected(lambda t: times.__setitem__("inj", t))
        tr.on_arrived(lambda t: times.__setitem__("arr", t))
        loop.at(0.0, lambda: net.submit(tr))
        loop.run()
        assert times["inj"] == pytest.approx(10e-6)     # 1000 B / 100 MB/s
        assert times["arr"] == pytest.approx(20e-6)     # + 10 us latency

    def test_zero_size_costs_latency_only(self):
        loop = EventLoop()
        net, _ = make_net(loop)
        tr = Transfer(src=0, dst=1, size=0)
        arr = []
        tr.on_arrived(arr.append)
        loop.at(0.0, lambda: net.submit(tr))
        loop.run()
        assert arr == [pytest.approx(10e-6)]

    def test_self_message_is_instant(self):
        loop = EventLoop()
        net, _ = make_net(loop)
        tr = Transfer(src=2, dst=2, size=4096)
        arr = []
        tr.on_arrived(arr.append)
        loop.at(0.0, lambda: net.submit(tr))
        loop.run()
        assert arr == [pytest.approx(0.0)]

    def test_in_port_serializes_same_destination(self):
        loop = EventLoop()
        net, _ = make_net(loop)
        t1 = Transfer(src=0, dst=2, size=1000)
        t2 = Transfer(src=1, dst=2, size=1000)
        arr = {}
        t1.on_arrived(lambda t: arr.__setitem__(1, t))
        t2.on_arrived(lambda t: arr.__setitem__(2, t))
        loop.at(0.0, lambda: (net.submit(t1), net.submit(t2)))
        loop.run()
        assert arr[1] == pytest.approx(20e-6)
        assert arr[2] == pytest.approx(30e-6)  # queued 10 us on the in-port

    def test_out_port_serializes_same_source(self):
        loop = EventLoop()
        net, _ = make_net(loop)
        t1 = Transfer(src=0, dst=1, size=1000)
        t2 = Transfer(src=0, dst=2, size=1000)
        arr = {}
        t1.on_arrived(lambda t: arr.__setitem__(1, t))
        t2.on_arrived(lambda t: arr.__setitem__(2, t))
        loop.at(0.0, lambda: (net.submit(t1), net.submit(t2)))
        loop.run()
        assert sorted(arr.values()) == [pytest.approx(20e-6), pytest.approx(30e-6)]

    def test_single_bus_serializes_disjoint_pairs(self):
        loop = EventLoop()
        net, _ = make_net(loop, buses=1)
        t1 = Transfer(src=0, dst=1, size=1000)
        t2 = Transfer(src=2, dst=3, size=1000)
        arr = {}
        t1.on_arrived(lambda t: arr.__setitem__(1, t))
        t2.on_arrived(lambda t: arr.__setitem__(2, t))
        loop.at(0.0, lambda: (net.submit(t1), net.submit(t2)))
        loop.run()
        assert arr[1] == pytest.approx(20e-6) and arr[2] == pytest.approx(30e-6)

    def test_two_buses_allow_parallel_disjoint_pairs(self):
        loop = EventLoop()
        net, _ = make_net(loop, buses=2)
        t1 = Transfer(src=0, dst=1, size=1000)
        t2 = Transfer(src=2, dst=3, size=1000)
        arr = {}
        t1.on_arrived(lambda t: arr.__setitem__(1, t))
        t2.on_arrived(lambda t: arr.__setitem__(2, t))
        loop.at(0.0, lambda: (net.submit(t1), net.submit(t2)))
        loop.run()
        assert arr[1] == arr[2] == pytest.approx(20e-6)

    def test_port_blocked_transfer_does_not_block_others(self):
        """FIFO with per-resource pass: a later transfer on free ports
        may start while the head waits for a busy port."""
        loop = EventLoop()
        net, _ = make_net(loop, buses=10)
        a = Transfer(src=0, dst=1, size=2000)   # occupies 0->1 for 20 us
        b = Transfer(src=0, dst=2, size=1000)   # blocked on out-port of 0
        c = Transfer(src=3, dst=2, size=1000)   # free to go
        arr = {}
        for key, t in (("a", a), ("b", b), ("c", c)):
            t.on_arrived(lambda tt, key=key: arr.__setitem__(key, tt))
        loop.at(0.0, lambda: (net.submit(a), net.submit(b), net.submit(c)))
        loop.run()
        assert arr["a"] == pytest.approx(30e-6)
        assert arr["c"] == pytest.approx(20e-6)   # went ahead of b
        assert arr["b"] == pytest.approx(40e-6)

    def test_waiters_after_completion_fire_immediately(self):
        loop = EventLoop()
        net, _ = make_net(loop)
        tr = Transfer(src=0, dst=1, size=0)
        loop.at(0.0, lambda: net.submit(tr))
        loop.run()
        got = []
        tr.on_arrived(got.append)
        assert got == [tr.arrival_time]

    def test_diagnostics(self):
        loop = EventLoop()
        net, _ = make_net(loop, buses=2)
        for (s, d) in ((0, 1), (2, 3)):
            loop.at(0.0, lambda s=s, d=d: net.submit(Transfer(src=s, dst=d, size=1000)))
        loop.run()
        assert net.peak_active == 2
        assert net.busy_seconds == pytest.approx(20e-6)


class TestMachineConfig:
    def test_paper_testbed_values(self):
        cfg = MachineConfig.paper_testbed("cg")
        assert cfg.bandwidth_mbps == 250.0 and cfg.buses == 6

    def test_paper_testbed_unknown_app(self):
        with pytest.raises(KeyError):
            MachineConfig.paper_testbed("linpack")

    def test_linear_cost(self):
        cfg = MachineConfig(bandwidth_mbps=100.0, latency=5e-6)
        assert cfg.linear_cost(1000) == pytest.approx(15e-6)

    def test_with_bandwidth(self):
        cfg = MachineConfig(buses=7).with_bandwidth(10.0)
        assert cfg.bandwidth_mbps == 10.0 and cfg.buses == 7

    @pytest.mark.parametrize("kw", [
        {"bandwidth_mbps": 0}, {"latency": -1}, {"buses": 0},
        {"input_ports": 0}, {"cpu_ratio": 0}, {"eager_threshold": -1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            MachineConfig(**kw)
