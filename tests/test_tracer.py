"""Tests of the instrumentation layer (memory tracker + interceptor)."""

import numpy as np
import pytest

from repro.trace.records import (
    CHANNEL_COLLECTIVE,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    Recv,
    Send,
    Wait,
)
from repro.trace.validate import validate
from repro.tracer import Clock, MemoryTracker, run_traced
from repro.tracer.timestamps import DEFAULT_MIPS


class TestClock:
    def test_seconds(self):
        assert Clock(1000.0).seconds(1_000_000) == pytest.approx(1e-3)

    def test_instructions(self):
        assert Clock(1000.0).instructions(2e-3) == 2_000_000

    def test_default_mips_is_paper_cpu(self):
        assert DEFAULT_MIPS == 2300.0

    def test_invalid_mips(self):
        with pytest.raises(ValueError):
            Clock(0.0)


class TestMemoryTracker:
    def setup_method(self):
        self.clock = Clock(1000.0)
        self.mt = MemoryTracker(self.clock)
        self.buf = np.zeros(8)

    def test_untracked_types_ignored(self):
        assert self.mt.lookup(3.14) is None
        assert self.mt.lookup([1, 2]) is None
        self.mt.record_stores([1, 2], [0], None, 0, 100)  # no-op, no raise

    def test_last_store_wins(self):
        self.mt.record_stores(self.buf, [2], np.array([0.5]), 0, 1000)
        self.mt.record_stores(self.buf, [2], np.array([0.1]), 1000, 1000)
        p = self.mt.close_production(self.buf, 2000)
        # second batch: absolute icount 1100 > 500 from the first
        assert p.times[2] == pytest.approx(self.clock.seconds(1100))

    def test_untouched_elements_are_nan(self):
        self.mt.record_stores(self.buf, [0], None, 0, 10)
        p = self.mt.close_production(self.buf, 10)
        assert np.isnan(p.times[1:]).all()

    def test_production_interval_resets(self):
        self.mt.record_stores(self.buf, [0], None, 0, 100)
        self.mt.close_production(self.buf, 100)
        p2 = self.mt.close_production(self.buf, 300)
        assert p2.interval_start == pytest.approx(self.clock.seconds(100))
        assert np.isnan(p2.times).all()

    def test_first_load_wins(self):
        rec = Recv(peer=0, tag=0, size=64)
        self.mt.note_recv(self.buf, rec, 0)
        self.mt.record_loads(self.buf, [3], np.array([0.5]), 0, 100)
        self.mt.record_loads(self.buf, [3], np.array([0.9]), 100, 100)
        self.mt.finalize(500)
        assert rec.consumption.times[3] == pytest.approx(self.clock.seconds(50))

    def test_consumption_patched_on_next_recv(self):
        r1, r2 = Recv(peer=0, tag=0, size=64), Recv(peer=0, tag=0, size=64)
        self.mt.note_recv(self.buf, r1, 0)
        self.mt.record_loads(self.buf, [0], None, 0, 100)
        self.mt.note_recv(self.buf, r2, 200)
        assert r1.consumption is not None
        assert r1.consumption.interval_end == pytest.approx(self.clock.seconds(200))
        assert r2.consumption is None

    def test_out_of_range_offsets_rejected(self):
        with pytest.raises(IndexError):
            self.mt.record_stores(self.buf, [8], None, 0, 10)
        with pytest.raises(IndexError):
            self.mt.record_loads(self.buf, [-1], None, 0, 10)

    def test_bad_positions_rejected(self):
        with pytest.raises(ValueError):
            self.mt.record_stores(self.buf, [0], np.array([1.5]), 0, 10)
        with pytest.raises(ValueError):
            self.mt.record_stores(self.buf, [0, 1], np.array([0.5]), 0, 10)

    def test_default_placement_stores_end_loads_start(self):
        self.mt.record_stores(self.buf, np.arange(8), None, 0, 800)
        p = self.mt.close_production(self.buf, 800)
        # store defaults: (i+1)/n of the burst
        assert p.times[-1] == pytest.approx(self.clock.seconds(800))
        rec = Recv(peer=0, tag=0, size=64)
        self.mt.note_recv(self.buf, rec, 800)
        self.mt.record_loads(self.buf, np.arange(8), None, 800, 800)
        self.mt.finalize(1600)
        assert rec.consumption.times[0] == pytest.approx(self.clock.seconds(800))

    def test_send_reads_buffer(self):
        """A send of a received buffer counts as consuming it."""
        rec = Recv(peer=0, tag=0, size=64)
        self.mt.note_recv(self.buf, rec, 100)
        self.mt.note_send_reads(self.buf, 150)
        self.mt.finalize(400)
        assert np.allclose(rec.consumption.times, self.clock.seconds(150))

    def test_streams_recorded_on_demand(self):
        mt = MemoryTracker(self.clock, record_streams=True)
        buf = np.zeros(4)
        mt.record_stores(buf, [0, 1], np.array([0.2, 0.4]), 0, 100)
        mt.record_stores(buf, [0], np.array([0.9]), 100, 100)
        p = mt.close_production(buf, 200)
        offs, times = p.stream
        assert offs.tolist() == [0, 1, 0]
        assert len(times) == 3

    def test_no_streams_by_default(self):
        self.mt.record_stores(self.buf, [0], None, 0, 10)
        p = self.mt.close_production(self.buf, 10)
        assert p.stream is None


class TestTracingEndToEnd:
    def test_record_sequence_single_rank(self):
        def app(comm):
            comm.event("phase", 1)
            comm.compute(1000)
            comm.compute(500)
        run = run_traced(app, 1, mips=1000.0)
        types = [type(r) for r in run.trace[0]]
        # Back-to-back computes coalesce into one maximal burst at
        # trace-build time (replay hot-path invariant).
        assert types == [Event, CpuBurst]
        assert run.trace[0][1].duration == pytest.approx(1.5e-6)
        assert run.trace[0][1].instructions == 1500

    def test_send_recv_records_and_profiles(self):
        buf = {}
        def app(comm):
            out = np.zeros(4)
            if comm.rank == 0:
                comm.compute(100, stores=[(out, np.arange(4))])
                comm.send(out, 1, tag=9)
            else:
                inb = np.zeros(4)
                comm.Recv(inb, 0, tag=9)
                comm.compute(100, loads=[(inb, np.arange(4))])
        tr = run_traced(app, 2, mips=1000.0).trace
        send = next(r for r in tr[0] if isinstance(r, Send))
        recv = next(r for r in tr[1] if isinstance(r, Recv))
        assert send.tag == 9 and send.size == 32 and send.elements == 4
        assert send.production is not None
        assert recv.consumption is not None  # flushed at on_finish
        assert recv.meta["buf"] == send.meta["buf"] or True  # ids differ per rank

    def test_irecv_record_patched(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(np.ones(3), 1, tag=4)
            else:
                b = np.zeros(3)
                req = comm.Irecv(b, 0, tag=4)
                comm.wait(req)
        tr = run_traced(app, 2).trace
        ir = next(r for r in tr[1] if isinstance(r, IRecv))
        w = next(r for r in tr[1] if isinstance(r, Wait))
        assert ir.size == 24 and ir.peer == 0 and ir.elements == 3
        assert w.requests == (ir.request,)

    def test_collectives_decomposed_on_collective_channel(self):
        def app(comm):
            comm.allreduce(1.0)
        tr = run_traced(app, 4).trace
        sends = [r for p in tr for r in p if isinstance(r, (Send, ISend))]
        assert sends and all(s.channel == CHANNEL_COLLECTIVE for s in sends)
        assert not any(isinstance(r, GlobalOp) for p in tr for r in p)

    def test_collectives_analytic_mode(self):
        def app(comm):
            comm.allreduce(1.0)
            comm.barrier()
        tr = run_traced(app, 4, decompose_collectives=False).trace
        for p in tr:
            ops = [r.op for r in p if isinstance(r, GlobalOp)]
            assert ops == [CollOp.ALLREDUCE, CollOp.BARRIER]
            assert not any(isinstance(r, (Send, Recv)) for r in p)

    def test_trace_validates_strictly(self, pipeline_trace):
        validate(pipeline_trace, strict=True)

    def test_trace_meta(self):
        run = run_traced(lambda c: None, 2, mips=500.0, meta={"app": "x"})
        assert run.trace.meta["mips"] == 500.0
        assert run.trace.meta["app"] == "x"
        assert run.trace.meta["nranks"] == 2

    def test_results_returned(self):
        run = run_traced(lambda c: c.rank + 1, 3)
        assert run.results == [1, 2, 3]

    def test_tracing_is_deterministic(self):
        from repro.trace import dim
        from tests.conftest import make_pipeline_app
        a = dim.dumps(run_traced(make_pipeline_app(), 3).trace)
        b = dim.dumps(run_traced(make_pipeline_app(), 3).trace)
        assert a == b
