"""Replay semantics: hand-computed reconstruction timings."""

import pytest

from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import ReplayError, simulate
from repro.trace.records import (
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)

#: 100 MB/s, 10 us latency: 1000 bytes = 10 us wire + 10 us latency.
CFG = MachineConfig(bandwidth_mbps=100.0, latency=10e-6)
US = 1e-6


def ts(*rank_records) -> TraceSet:
    return TraceSet([ProcessTrace(r, list(recs))
                     for r, recs in enumerate(rank_records)])


class TestElementaryTiming:
    def test_pure_compute(self):
        res = simulate(ts([CpuBurst(100 * US)]), CFG)
        assert res.duration == pytest.approx(100 * US)
        assert res.states[0] == [("Running", 0.0, pytest.approx(100 * US))]

    def test_cpu_ratio_scales_bursts(self):
        cfg = MachineConfig(cpu_ratio=2.0)
        res = simulate(ts([CpuBurst(100 * US)]), cfg)
        assert res.duration == pytest.approx(200 * US)

    def test_eager_send_costs_sender_nothing(self):
        res = simulate(ts(
            [CpuBurst(100 * US), Send(peer=1, tag=0, size=1000)],
            [Recv(peer=0, tag=0, size=1000)],
        ), CFG)
        assert res.rank_end[0] == pytest.approx(100 * US)
        # receiver: send at 100, +10 wire, +10 latency
        assert res.rank_end[1] == pytest.approx(120 * US)
        assert res.time_in_state("Waiting a message", 1) == pytest.approx(120 * US)

    def test_rendezvous_send_blocks_until_delivery(self):
        res = simulate(ts(
            [CpuBurst(100 * US), Send(peer=1, tag=0, size=1000, rendezvous=True)],
            [Recv(peer=0, tag=0, size=1000)],
        ), CFG)
        assert res.rank_end[0] == pytest.approx(120 * US)
        assert res.time_in_state("Send", 0) == pytest.approx(20 * US)

    def test_rendezvous_waits_for_late_receiver(self):
        res = simulate(ts(
            [Send(peer=1, tag=0, size=1000, rendezvous=True)],
            [CpuBurst(500 * US), Recv(peer=0, tag=0, size=1000)],
        ), CFG)
        # transfer starts when the recv is posted at 500
        assert res.rank_end[0] == pytest.approx(520 * US)
        assert res.rank_end[1] == pytest.approx(520 * US)

    def test_eager_threshold_selects_protocol(self):
        cfg = MachineConfig(bandwidth_mbps=100.0, latency=10e-6,
                            eager_threshold=500)
        res = simulate(ts(
            [Send(peer=1, tag=0, size=1000)],     # > threshold: rendezvous
            [CpuBurst(300 * US), Recv(peer=0, tag=0, size=1000)],
        ), cfg)
        assert res.rank_end[0] == pytest.approx(320 * US)

    def test_message_already_arrived_costs_nothing(self):
        res = simulate(ts(
            [Send(peer=1, tag=0, size=1000)],
            [CpuBurst(500 * US), Recv(peer=0, tag=0, size=1000)],
        ), CFG)
        assert res.rank_end[1] == pytest.approx(500 * US)
        assert res.time_in_state("Waiting a message", 1) == 0.0

    def test_isend_wait_is_buffered(self):
        res = simulate(ts(
            [ISend(peer=1, tag=0, size=1000, request=1), Wait((1,)),
             CpuBurst(5 * US)],
            [Recv(peer=0, tag=0, size=1000)],
        ), CFG)
        assert res.rank_end[0] == pytest.approx(5 * US)

    def test_irecv_wait_blocks_until_arrival(self):
        res = simulate(ts(
            [CpuBurst(100 * US), Send(peer=1, tag=0, size=1000)],
            [IRecv(peer=0, tag=0, size=1000, request=1), CpuBurst(50 * US),
             Wait((1,))],
        ), CFG)
        assert res.rank_end[1] == pytest.approx(120 * US)
        assert res.time_in_state("Wait/WaitAll", 1) == pytest.approx(70 * US)

    def test_waitall_completes_at_last_arrival(self):
        res = simulate(ts(
            [CpuBurst(100 * US), Send(peer=2, tag=0, size=1000)],
            [CpuBurst(300 * US), Send(peer=2, tag=0, size=1000)],
            [IRecv(peer=0, tag=0, size=1000, request=1),
             IRecv(peer=1, tag=0, size=1000, request=2),
             Wait((1, 2))],
        ), CFG)
        assert res.rank_end[2] == pytest.approx(320 * US)

    def test_events_timestamped(self):
        res = simulate(ts([CpuBurst(10 * US), Event("mark", 7)]), CFG)
        assert res.events[0] == [(pytest.approx(10 * US), "mark", 7)]


class TestPipelines:
    def test_three_stage_pipeline_fill(self):
        """Each hop adds wire+latency; compute overlaps downstream."""
        chain = ts(
            [CpuBurst(100 * US), Send(peer=1, tag=0, size=1000)],
            [Recv(peer=0, tag=0, size=1000), CpuBurst(100 * US),
             Send(peer=2, tag=0, size=1000)],
            [Recv(peer=1, tag=0, size=1000), CpuBurst(100 * US)],
        )
        res = simulate(chain, CFG)
        # 100 + 20 + 100 + 20 + 100
        assert res.duration == pytest.approx(340 * US)

    def test_messages_reported(self):
        res = simulate(ts(
            [Send(peer=1, tag=5, size=1000)],
            [Recv(peer=0, tag=5, size=1000)],
        ), CFG)
        (m,) = res.messages
        assert (m.src, m.dst, m.tag, m.size) == (0, 1, 5, 1000)
        assert m.t_recv == pytest.approx(20 * US)
        assert m.flight_time == pytest.approx(20 * US)
        assert m.queue_delay == 0.0


class TestCollectivesAnalytic:
    def test_barrier_synchronizes(self):
        res = simulate(ts(
            [CpuBurst(100 * US), GlobalOp(op=CollOp.BARRIER, seq=1)],
            [CpuBurst(300 * US), GlobalOp(op=CollOp.BARRIER, seq=1)],
        ), CFG)
        # cost = 2 * log2(2) * latency = 20 us after the slowest entry
        assert res.rank_end[0] == pytest.approx(320 * US)
        assert res.rank_end[1] == pytest.approx(320 * US)
        assert res.time_in_state("Group communication", 0) == pytest.approx(220 * US)

    def test_allreduce_cost_scales_with_size(self):
        g = lambda: GlobalOp(op=CollOp.ALLREDUCE, send_size=1000,
                             recv_size=1000, seq=1)
        res = simulate(ts([g()], [g()]), CFG)
        # 2 * log2(2) * (10 us + 10 us) = 40 us
        assert res.duration == pytest.approx(40 * US)

    def test_single_rank_collective_free(self):
        res = simulate(ts([GlobalOp(op=CollOp.BCAST, seq=1)]), CFG)
        assert res.duration == pytest.approx(0.0)


class TestStallDetection:
    def test_rendezvous_cycle_detected(self):
        cyc = ts(
            [Send(peer=1, tag=0, size=1000, rendezvous=True),
             Recv(peer=1, tag=0, size=1000)],
            [Send(peer=0, tag=0, size=1000, rendezvous=True),
             Recv(peer=0, tag=0, size=1000)],
        )
        with pytest.raises(ReplayError, match="stalled"):
            simulate(cyc, CFG)

    def test_missing_collective_partner_detected(self):
        bad = ts(
            [GlobalOp(op=CollOp.BARRIER, seq=1)],
            [CpuBurst(1 * US)],
        )
        with pytest.raises(ReplayError):
            simulate(bad, CFG)


class TestDeterminism:
    def test_replay_is_reproducible(self, pipeline_trace, machine):
        a = simulate(pipeline_trace, machine)
        b = simulate(pipeline_trace, machine)
        assert a.duration == b.duration
        assert a.states == b.states
        assert a.messages == b.messages
