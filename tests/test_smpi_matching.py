"""Unit tests of the message-matching engine (MessageBoard)."""

import numpy as np
import pytest

from repro.smpi.matching import ANY_SOURCE, ANY_TAG, MessageBoard


class TestBasicMatching:
    def test_send_then_recv(self):
        b = MessageBoard()
        b.post_send(0, 1, 5, "hello")
        pr = b.post_recv(1, 0, 5)
        assert b.is_complete(pr)
        assert b.take(pr).payload == "hello"

    def test_recv_then_send(self):
        b = MessageBoard()
        pr = b.post_recv(1, 0, 5)
        assert not b.is_complete(pr)
        b.post_send(0, 1, 5, "late")
        assert b.is_complete(pr)
        assert b.take(pr).payload == "late"

    def test_take_unmatched_raises(self):
        b = MessageBoard()
        pr = b.post_recv(1, 0, 0)
        with pytest.raises(RuntimeError):
            b.take(pr)

    def test_tag_mismatch_no_match(self):
        b = MessageBoard()
        b.post_send(0, 1, 5, "x")
        pr = b.post_recv(1, 0, 6)
        assert not b.is_complete(pr)

    def test_channel_and_sub_isolate(self):
        b = MessageBoard()
        b.post_send(0, 1, 0, "chan1", channel=1)
        pr0 = b.post_recv(1, 0, 0, channel=0)
        assert not b.is_complete(pr0)
        pr1 = b.post_recv(1, 0, 0, channel=1)
        assert b.is_complete(pr1)

    def test_destination_isolation(self):
        b = MessageBoard()
        b.post_send(0, 2, 0, "for-two")
        pr = b.post_recv(1, 0, 0)
        assert not b.is_complete(pr)


class TestOrdering:
    def test_non_overtaking_same_key(self):
        b = MessageBoard()
        b.post_send(0, 1, 0, "first")
        b.post_send(0, 1, 0, "second")
        pr1 = b.post_recv(1, 0, 0)
        pr2 = b.post_recv(1, 0, 0)
        assert b.take(pr1).payload == "first"
        assert b.take(pr2).payload == "second"

    def test_wildcard_matches_earliest_arrival(self):
        b = MessageBoard()
        b.post_send(2, 0, 7, "from-two")
        b.post_send(1, 0, 7, "from-one")
        pr = b.post_recv(0, ANY_SOURCE, ANY_TAG)
        assert b.take(pr).payload == "from-two"  # earlier global seq

    def test_earliest_posted_recv_wins(self):
        b = MessageBoard()
        pr1 = b.post_recv(1, 0, 0)
        pr2 = b.post_recv(1, 0, 0)
        b.post_send(0, 1, 0, "x")
        assert b.is_complete(pr1)
        assert not b.is_complete(pr2)

    def test_wildcard_recv_posted_first(self):
        b = MessageBoard()
        pr = b.post_recv(0, ANY_SOURCE, 3)
        b.post_send(5, 0, 3, "payload")
        assert b.is_complete(pr)
        env = b.take(pr)
        assert env.src == 5 and env.tag == 3


class TestPayloadSemantics:
    def test_ndarray_copied(self):
        b = MessageBoard()
        a = np.ones(3)
        b.post_send(0, 1, 0, a)
        a[:] = 9
        pr = b.post_recv(1, 0, 0)
        assert np.allclose(b.take(pr).payload, 1.0)

    def test_dict_deep_copied(self):
        b = MessageBoard()
        d = {"inner": [1]}
        b.post_send(0, 1, 0, d)
        d["inner"].append(2)
        pr = b.post_recv(1, 0, 0)
        assert b.take(pr).payload == {"inner": [1]}

    def test_scalar_payloads(self):
        b = MessageBoard()
        for v in (1, 2.5, "s", b"b", None, True):
            b.post_send(0, 1, 0, v)
            pr = b.post_recv(1, 0, 0)
            assert b.take(pr).payload == v


class TestCounters:
    def test_pending_counts(self):
        b = MessageBoard()
        assert b.pending_send_count() == 0
        b.post_send(0, 1, 0, "x")
        assert b.pending_send_count() == 1
        pr = b.post_recv(1, 0, 9)
        assert b.pending_recv_count() == 1
        b.post_send(0, 1, 9, "y")
        assert b.pending_recv_count() == 0
        assert b.pending_send_count() == 1
