"""Checkpoint/resume: journal invariants, drain, guards, degradation.

Covers the write-ahead journal (checksummed lines, idempotent replay,
torn-tail recovery), the engine's serve-without-re-execution resume
path, graceful drain on SIGTERM/SIGINT, the RSS and disk-space guards,
cache degrade-to-memory, PID-recycling-safe staging sweeps, and the
run-manifest resume bookkeeping.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.experiments import (
    CampaignInterrupted,
    CheckpointJournal,
    ExperimentEngine,
    GridPoint,
    expand_grid,
    graceful_drain,
    list_runs,
    point_key,
    replay_journal,
)
from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    SimResultCache,
    TraceCache,
    _sweep_orphan_tmps,
    _writer_alive,
    _writer_token,
    sweep_cache_dir,
)
from repro.experiments.checkpoint import _seal_line, render_runs_table
from repro.experiments.parallel import WorkerMemoryError
from repro.obs import RunContext, get_registry

#: A tiny Sweep3D instance so traces build in milliseconds.
TINY = dict(nx=8, ny=8, nz=4, mk=2, angle_block=2, iterations=1)

#: A grid point that fails identically on every attempt.
POISON = GridPoint(app="no_such_app", nranks=4)


def tiny_points():
    return expand_grid(
        ["sweep3d"],
        variants=("original", "real"),
        bandwidths=(None, 100.0),
        nranks=4,
        app_params=TINY,
    )


def counter(name: str) -> float:
    return get_registry().counter(name).value


# --------------------------------------------------------------------------- #
# Journal line format and replay.
# --------------------------------------------------------------------------- #

class TestJournalReplay:
    def test_record_and_replay_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, run_id="r") as j:
            j.record("k1", "duration", {"duration": 1.5})
            j.record("k2", "failure", {"kind": "exception", "error": "boom"})
        entries, max_seq, dropped = replay_journal(path)
        assert dropped == 0
        assert max_seq == 2
        assert entries[("k1", "duration")].payload == {"duration": 1.5}
        assert entries[("k2", "failure")].payload["error"] == "boom"

    def test_replay_twice_equals_replay_once(self, tmp_path):
        """Idempotence: a journal replayed twice gives the same state."""
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, run_id="r") as j:
            for i in range(10):
                j.record(f"k{i % 4}", "duration", {"duration": float(i)})
        once = replay_journal(path)
        twice = replay_journal(path)
        assert once == twice
        # Later duplicates win: k0 was last written at i=8.
        assert once[0][("k0", "duration")].payload == {"duration": 8.0}

    def test_truncated_trailing_line_dropped_and_point_reruns(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, run_id="r") as j:
            j.record("keep", "duration", {"duration": 1.0})
            j.record("torn", "duration", {"duration": 2.0})
        # Simulate a torn write: chop the tail of the last line.
        text = path.read_text()
        path.write_text(text[: len(text) - 25])
        entries, _, dropped = replay_journal(path)
        assert dropped == 1
        assert ("keep", "duration") in entries
        assert ("torn", "duration") not in entries  # must re-run

    def test_garbled_line_detected_by_checksum(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        line = _seal_line(1, {"point": "k", "mode": "duration",
                              "payload": {"duration": 3.0}})
        # Bit-flip inside the payload but keep the JSON well-formed.
        path.write_text(line.replace("3.0", "9.0") + "\n")
        entries, _, dropped = replay_journal(path)
        assert dropped == 1
        assert not entries

    def test_foreign_garbage_lines_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('not json at all\n{"schema": 999}\n')
        entries, _, dropped = replay_journal(path)
        assert dropped == 2 and not entries

    def test_reopened_journal_continues_sequence(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as j:
            j.record("a", "duration", {"duration": 1.0})
        with CheckpointJournal(path) as j:
            j.record("b", "duration", {"duration": 2.0})
        _, max_seq, _ = replay_journal(path)
        assert max_seq == 2  # monotone across reopen, no seq reuse


class TestPointKey:
    def test_distinct_specs_distinct_keys(self):
        pts = tiny_points()
        keys = {point_key(p) for p in pts}
        assert len(keys) == len(pts)

    def test_key_stable_for_equal_points(self):
        a, b = tiny_points()[0], tiny_points()[0]
        assert point_key(a) == point_key(b)


# --------------------------------------------------------------------------- #
# Engine resume: serve journaled completions without re-execution.
# --------------------------------------------------------------------------- #

class TestEngineResume:
    def test_resume_serves_without_reexecution(self, tmp_path):
        pts = tiny_points()
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path, run_id="r1") as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                first = eng.run_grid(pts)
        replayed0 = counter("checkpoint.replayed")
        executed0 = counter("engine.points_executed")
        with CheckpointJournal(path, run_id="r1") as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                second = eng.run_grid(pts)
        assert [r.to_dict() for r in second] == [r.to_dict() for r in first]
        assert counter("engine.points_executed") == executed0
        assert counter("checkpoint.replayed") == replayed0 + len(pts)

    def test_result_entry_serves_duration_request(self, tmp_path):
        pts = tiny_points()[:2]
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                results = eng.run_grid(pts)
        executed0 = counter("engine.points_executed")
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                durs = eng.durations(pts)
        assert durs == [r.duration for r in results]
        assert counter("engine.points_executed") == executed0

    def test_journal_and_cache_agree_bitwise(self, tmp_path):
        """A journal-served result equals the cache/simulate result."""
        pts = tiny_points()[:2]
        cache_dir = tmp_path / "cache"
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, cache_dir=cache_dir,
                                  checkpoint=j) as eng:
                first = eng.run_grid(pts)
        # Fresh engine, no journal: cache (or simulation) answers.
        with ExperimentEngine(jobs=1, cache_dir=cache_dir) as eng:
            second = eng.run_grid(pts)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]

    def test_degraded_resume_restores_quarantine(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, degraded=True, checkpoint=j) as eng:
                out = eng.durations([POISON])
        assert out[0] is eng.quarantine[POISON]
        executed0 = counter("engine.points_executed")
        quarantined0 = counter("engine.quarantined")
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, degraded=True, checkpoint=j) as eng:
                out = eng.durations([POISON])
                assert POISON in eng.quarantine
                assert out[0].kind == "exception"
        # Restored, not re-run: no execution, no fresh quarantine count.
        assert counter("engine.points_executed") == executed0
        assert counter("engine.quarantined") == quarantined0

    def test_strict_engine_gives_journaled_failure_a_fresh_chance(
            self, tmp_path):
        from repro.experiments import GridExecutionError
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, degraded=True, checkpoint=j) as eng:
                eng.durations([POISON])
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                with pytest.raises(GridExecutionError):
                    eng.durations([POISON])

    def test_corrupt_result_payload_reruns_point(self, tmp_path):
        pts = tiny_points()[:1]
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                first = eng.run_grid(pts)
        # Corrupt the journaled payload (well-formed line, bogus result).
        key = point_key(pts[0])
        path.write_text(_seal_line(1, {
            "point": key, "mode": "result", "payload": {"result": {"x": 1}},
        }) + "\n")
        executed0 = counter("engine.points_executed")
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                second = eng.run_grid(pts)
        assert counter("engine.points_executed") == executed0 + 1
        assert second[0].to_dict() == first[0].to_dict()


# --------------------------------------------------------------------------- #
# Graceful drain.
# --------------------------------------------------------------------------- #

class TestGracefulDrain:
    def test_drain_raises_campaign_interrupted_serial(self, tmp_path):
        pts = tiny_points()
        with CheckpointJournal(tmp_path / "j.jsonl", run_id="rX") as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                eng.request_drain()
                with pytest.raises(CampaignInterrupted) as ei:
                    eng.run_grid(pts)
        assert ei.value.resumable
        assert ei.value.run_id == "rX"
        assert ei.value.remaining == len(pts)

    def test_drain_without_journal_not_resumable(self):
        with ExperimentEngine(jobs=1) as eng:
            eng.request_drain()
            with pytest.raises(CampaignInterrupted) as ei:
                eng.durations(tiny_points())
        assert not ei.value.resumable

    def test_sigterm_requests_drain_then_resume_completes(self, tmp_path):
        pts = tiny_points()
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path, run_id="r") as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                with graceful_drain(eng):
                    os.kill(os.getpid(), signal.SIGTERM)
                    deadline = time.monotonic() + 5.0
                    while (not eng.drain_requested
                           and time.monotonic() < deadline):
                        time.sleep(0.01)
                    assert eng.drain_requested
                    with pytest.raises(CampaignInterrupted):
                        eng.run_grid(pts)
        # The old handler is restored and the campaign resumes cleanly.
        with CheckpointJournal(path, run_id="r") as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                assert len(eng.run_grid(pts)) == len(pts)

    def test_second_signal_escalates_to_keyboardinterrupt(self):
        with ExperimentEngine(jobs=1) as eng:
            with graceful_drain(eng):
                os.kill(os.getpid(), signal.SIGINT)
                deadline = time.monotonic() + 5.0
                while (not eng.drain_requested
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                assert eng.drain_requested
                with pytest.raises(KeyboardInterrupt):
                    os.kill(os.getpid(), signal.SIGINT)
                    t0 = time.monotonic()
                    while time.monotonic() - t0 < 5.0:
                        time.sleep(0.01)

    def test_drain_preserves_completed_prefix(self, tmp_path):
        """Points journaled before the drain are served on resume."""
        pts = tiny_points()
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path, run_id="r") as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                done = eng.durations(pts[:2])  # journaled
                eng.request_drain()
                with pytest.raises(CampaignInterrupted):
                    eng.durations(pts)
        executed0 = counter("engine.points_executed")
        with CheckpointJournal(path, run_id="r") as j:
            with ExperimentEngine(jobs=1, checkpoint=j) as eng:
                full = eng.durations(pts)
        assert full[:2] == done
        # Only the tail had to execute.
        assert counter("engine.points_executed") == executed0 + len(pts) - 2


# --------------------------------------------------------------------------- #
# Resource guards: RSS watchdog and disk low-water.
# --------------------------------------------------------------------------- #

class TestResourceGuards:
    def test_rss_guard_converts_oom_into_journaled_failure(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FAKE_RSS_MB", "4096")
        trips0 = counter("engine.rss_guard_trips")
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path) as j:
            with ExperimentEngine(jobs=1, degraded=True, checkpoint=j,
                                  rss_limit_mb=512) as eng:
                out = eng.durations(tiny_points()[:1])
        assert out[0].kind == "exception"
        assert "WorkerMemoryError" in out[0].error
        assert counter("engine.rss_guard_trips") == trips0 + 1
        entries, _, _ = replay_journal(path)
        assert any(mode == "failure" for (_, mode) in entries)

    def test_rss_guard_inactive_without_limit(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FAKE_RSS_MB", "4096")
        with ExperimentEngine(jobs=1) as eng:
            assert len(eng.durations(tiny_points()[:1])) == 1

    def test_rss_limit_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_RSS_LIMIT_MB", "512")
        with ExperimentEngine(jobs=1) as eng:
            assert eng.rss_limit_mb == 512.0

    def test_worker_memory_error_is_memory_error(self):
        assert issubclass(WorkerMemoryError, MemoryError)

    def test_journal_degrades_on_low_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MIN_FREE_MB", str(10 ** 9))  # ~1 PB floor
        degraded0 = counter("checkpoint.degraded")
        with CheckpointJournal(tmp_path / "j.jsonl") as j:
            j.record("k", "duration", {"duration": 1.0})
            assert j.degraded
            # Degraded appends still index in memory for this session.
            assert j.lookup("k", "duration") is not None
        assert counter("checkpoint.degraded") == degraded0 + 1
        entries, _, _ = replay_journal(tmp_path / "j.jsonl")
        assert not entries  # nothing was persisted

    def test_journal_degrades_on_unwritable_path(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        j = CheckpointJournal(blocker / "sub" / "j.jsonl")
        assert j.degraded
        j.record("k", "duration", {"duration": 1.0})  # must not raise
        j.close()


# --------------------------------------------------------------------------- #
# Satellite 1: caches degrade to memory instead of crashing.
# --------------------------------------------------------------------------- #

class TestCacheDegrade:
    def test_sim_cache_enospc_degrades_once(self, tmp_path, monkeypatch):
        cache = SimResultCache(tmp_path / "replays")

        def explode(path, text):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_mod, "_stage_and_publish", explode)
        degraded0 = counter("cache.degraded")
        from repro.experiments.pipeline import AppExperiment
        exp = AppExperiment("sweep3d", nranks=4, app_params=TINY)
        trace = exp.trace("original")
        res = cache.load_or_simulate(trace, exp.machine)
        assert cache.degraded
        assert counter("cache.degraded") == degraded0 + 1
        # The in-memory fallback still answers, bit-identically.
        again = cache.load(cache.key(trace, exp.machine))
        assert again is not None
        assert again.to_dict() == res.to_dict()
        # Degrading twice does not double-count.
        cache._degrade("again")
        assert counter("cache.degraded") == degraded0 + 1

    def test_sim_cache_unusable_dir_degrades_at_init(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        cache = SimResultCache(blocker / "replays")
        assert cache.degraded
        cache.put_digest("spec", "a" * 24)  # must not raise
        assert cache.get_digest("spec") == "a" * 24

    def test_trace_cache_degrades_and_serves_from_memory(
            self, tmp_path, monkeypatch):
        cache = TraceCache(tmp_path / "traces")

        def explode(path, text):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(cache_mod, "_stage_and_publish", explode)
        from repro.experiments.pipeline import AppExperiment
        exp = AppExperiment("sweep3d", nranks=4, app_params=TINY)
        built = []

        def builder():
            built.append(1)
            return exp.trace("original")

        t1 = cache.load_or_build("k", builder)
        cache.flush()  # publication (and hence the degrade) is async
        assert cache.degraded
        t2 = cache.load_or_build("k", builder)
        assert len(built) == 1  # second call was a memory hit
        assert t1 is t2

    def test_disk_low_floor_degrades_publish(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MIN_FREE_MB", str(10 ** 9))
        cache = SimResultCache(tmp_path / "replays")
        assert not cache.degraded  # init does not write entries
        assert not cache._publish(tmp_path / "replays" / "x.json", "{}")
        assert cache.degraded


# --------------------------------------------------------------------------- #
# Satellite 2: PID-recycling-safe staging sweeps.
# --------------------------------------------------------------------------- #

class TestWriterIdentity:
    DEAD_PID = 2 ** 22 + 12345

    def test_own_token_alive(self):
        assert _writer_alive(str(os.getpid()))
        assert _writer_alive(_writer_token())

    def test_dead_pid_not_alive_either_format(self):
        assert not _writer_alive(str(self.DEAD_PID))
        assert not _writer_alive(f"{self.DEAD_PID}-12345")

    def test_recycled_pid_detected_by_start_time(self):
        # A live PID recorded with a different start time is a recycle.
        assert not _writer_alive(f"{os.getpid()}-1")

    def test_sweep_removes_recycled_pid_tmp(self, tmp_path):
        live_but_recycled = tmp_path / f"entry.dim.{os.getpid()}-1.tmp"
        live_but_recycled.write_text("garbage")
        ours = tmp_path / f"entry2.dim.{_writer_token()}.tmp"
        ours.write_text("mid-publish")
        assert _sweep_orphan_tmps(tmp_path) == 1
        assert not live_but_recycled.exists()
        assert ours.exists()  # genuinely-live writer left alone

    def test_sweep_cache_dir_handles_both_token_formats(self, tmp_path):
        for sub in ("traces", "replays"):
            d = tmp_path / sub
            d.mkdir()
            (d / f"k.x.{os.getpid()}.tmp").write_text("legacy own")
            (d / f"k.y.{_writer_token()}.tmp").write_text("new own")
            (d / f"k.z.{self.DEAD_PID}-7.tmp").write_text("dead writer")
        assert sweep_cache_dir(tmp_path) == 6
        for sub in ("traces", "replays"):
            assert not list((tmp_path / sub).glob("*.tmp"))

    def test_stage_and_publish_uses_start_time_token(self, tmp_path):
        seen = []
        orig_replace = Path.replace

        def spy(self, target):
            seen.append(self.name)
            return orig_replace(self, target)

        Path.replace = spy
        try:
            cache_mod._stage_and_publish(tmp_path / "out.json", "{}")
        finally:
            Path.replace = orig_replace
        # <name>.<pid>-<ticks>-<serial>.tmp — the serial keeps sibling
        # publisher threads off each other's staging file
        assert seen
        prefix = f"out.json.{_writer_token()}-"
        assert seen[0].startswith(prefix) and seen[0].endswith(".tmp")
        assert seen[0][len(prefix):-len(".tmp")].isdigit()
        assert (tmp_path / "out.json").read_text() == "{}"


# --------------------------------------------------------------------------- #
# Manifest resume + operator tooling.
# --------------------------------------------------------------------------- #

class TestManifestResume:
    def test_resume_increments_seq_and_merges_counters(self, tmp_path):
        reg = get_registry()
        run = RunContext(tmp_path, command="t", run_id="run-a")
        reg.counter("test.ckpt.points").inc(3)
        m1 = run.finalize(status="interrupted")
        assert m1["run_seq"] == 1
        base = m1["merged_counters"]["test.ckpt.points"]

        reg.reset()  # a real resume is a fresh process
        run2 = RunContext(tmp_path, command="t", run_id="run-a", resume=True)
        reg.counter("test.ckpt.points").inc(2)
        m2 = run2.finalize(status="ok")
        assert m2["run_seq"] == 2
        assert m2["merged_counters"]["test.ckpt.points"] == base + 2
        # The per-session snapshot is NOT inflated by prior sequences.
        assert m2["metrics"]["counters"]["test.ckpt.points"] == 2

        events = [json.loads(line) for line in
                  (tmp_path / "run-a" / "events.jsonl").read_text()
                  .splitlines()]
        kinds = [e["kind"] for e in events]
        assert "resumed_from" in kinds
        assert kinds.count("run_start") == 2

    def test_resume_requires_existing_run(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunContext(tmp_path, run_id="no-such-run", resume=True)
        with pytest.raises(ValueError):
            RunContext(tmp_path, resume=True)

    def test_list_runs_reports_progress_and_resumability(self, tmp_path):
        run = RunContext(tmp_path, command="repro-report", run_id="run-x")
        with CheckpointJournal(run.dir / "journal.jsonl", run_id="run-x") as j:
            j.record("p1", "result", {"result": {}})
            j.record("p2", "failure", {"kind": "exception", "error": "e"})
        run.finalize(status="interrupted")

        done = RunContext(tmp_path, command="repro-report", run_id="run-y")
        done.finalize(status="ok")

        runs = {r["run_id"]: r for r in list_runs(tmp_path)}
        assert runs["run-x"]["resumable"]
        assert runs["run-x"]["points"] == 2
        assert runs["run-x"]["failures"] == 1
        assert not runs["run-y"]["resumable"]
        table = render_runs_table(list(runs.values()))
        assert "run-x" in table and "repro-report" in table

    def test_list_runs_empty(self, tmp_path):
        assert list_runs(tmp_path / "nowhere") == []
        assert render_runs_table([]) == "no runs found"


class TestWorkerFunnelIsolation:
    def test_configure_worker_drops_inherited_deltas(self):
        """A forked worker must not re-report the parent's pre-fork
        activity: its first flushed payload starts from zero deltas."""
        from repro.obs import collect_worker_payload, configure_worker
        get_registry().counter("test.ckpt.prefork").inc(5)
        configure_worker(None)  # what _worker_init runs after the fork
        payload = collect_worker_payload()
        assert "test.ckpt.prefork" not in payload["metrics"]["counters"]
        # The counter value itself survives — only the delta is drained.
        assert counter("test.ckpt.prefork") == 5
