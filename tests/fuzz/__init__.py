"""Mutational fuzz harness for the hardened trace parsers."""
