"""Seeded mutational fuzzing of the trace parsers.

The contract under test is the hardened-ingestion guarantee of the
integrity layer: no matter how mangled the input, :func:`repro.trace.
dim.loads` raises only :class:`~repro.trace.dim.TraceFormatError` and
:func:`repro.trace.columnar.decode` raises only
:class:`~repro.trace.columnar.ColumnarFormatError` — never a bare
``IndexError``/``struct.error``/``MemoryError``, never a hang.

Deterministic in ``--seed``: every case derives from
``random.Random(seed + iteration)``, so a reported failure replays
with ``python -m tests.fuzz.harness --seed S --iterations 1 --skip I``.

Run directly for the CI smoke budget::

    python -m tests.fuzz.harness --iterations 2000

or via the pytest wrapper (``tests/fuzz/test_fuzz_smoke.py``) for the
tier-1 quick pass.
"""

from __future__ import annotations

import argparse
import functools
import random
import sys
import time
from dataclasses import dataclass, field

from repro.trace import dim
from repro.trace.columnar import ColumnarFormatError, columnar_of, decode
from repro.trace.dim import TraceFormatError

__all__ = ["FuzzFailure", "FuzzStats", "run"]

#: Hard per-case wall budget; the ingestion caps are supposed to make
#: pathological inputs fail fast, so tripping this is itself a bug.
CASE_SECONDS = 5.0

#: Mutants never grow past this (keeps the harness memory-stable).
MAX_MUTANT = 2 << 20


@dataclass
class FuzzFailure:
    """One escaped exception (or blown time budget)."""

    iteration: int
    seed: int
    kind: str          # "dim" | "dim-quarantine" | "rcol"
    error: str
    elapsed: float

    def render(self) -> str:
        return (f"iteration {self.iteration} (seed {self.seed}, "
                f"{self.kind}, {self.elapsed:.2f}s): {self.error}")


@dataclass
class FuzzStats:
    iterations: int = 0
    rejected: int = 0      # typed parse error (the expected outcome)
    accepted: int = 0      # mutant still parsed (also fine)
    failures: list = field(default_factory=list)
    slowest: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        lines = [
            f"fuzz: {self.iterations} case(s), {self.accepted} accepted, "
            f"{self.rejected} rejected, slowest {self.slowest:.3f}s "
            f"-- {verdict}"
        ]
        lines += ["  " + f.render() for f in self.failures]
        return "\n".join(lines)


@functools.lru_cache(maxsize=1)
def _corpus() -> tuple[list[bytes], list[bytes]]:
    """Seed corpora: (dim texts as bytes, RCOL blobs)."""
    from repro.tracer.tracefile import run_traced

    def pipeline(comm):
        import numpy as np
        r, s = comm.rank, comm.size
        buf = np.zeros(32)
        for it in range(2):
            comm.event("iteration", it)
            if r > 0:
                comm.Recv(buf, r - 1, tag=0)
            comm.compute(10_000)
            if r < s - 1:
                comm.send(buf, r + 1, tag=0)
        comm.barrier()

    trace = run_traced(pipeline, 4, mips=1000.0).trace
    full = dim.dumps(trace)
    magic = full.splitlines()[0]
    texts = [
        full.encode(),
        (magic + "\nP:0\nP:1\n"
         "S:1:0:64:0:0:8:0:-\nR:0:0:64:0:0:8:0\n").encode(),
        (magic + "\n#META {\"app\": \"x\"}\nP:0\nB:0.001:-\n").encode(),
        b"",
    ]
    blobs = [columnar_of(trace).encode()]
    return texts, blobs


def _mutate(rng: random.Random, data: bytes, other: bytes) -> bytes:
    """One seeded mutation: flip/truncate/delete/duplicate/insert/splice."""
    if not data:
        data = other or b"\n"
    out = bytearray(data)
    for _ in range(rng.randint(1, 4)):
        op = rng.randrange(6)
        if op == 0 and out:                      # flip bytes
            for _ in range(rng.randint(1, 8)):
                i = rng.randrange(len(out))
                out[i] ^= 1 << rng.randrange(8)
        elif op == 1 and out:                    # truncate
            del out[rng.randrange(len(out)):]
        elif op == 2 and len(out) > 1:           # delete a slice
            i = rng.randrange(len(out) - 1)
            del out[i:i + rng.randint(1, max(1, len(out) // 4))]
        elif op == 3 and out:                    # duplicate a slice
            i = rng.randrange(len(out))
            j = min(len(out), i + rng.randint(1, 256))
            out[i:i] = out[i:j]
        elif op == 4:                            # insert random bytes
            i = rng.randrange(len(out) + 1)
            out[i:i] = bytes(rng.randrange(256)
                             for _ in range(rng.randint(1, 64)))
        else:                                    # splice from another entry
            if other:
                i = rng.randrange(len(out) + 1)
                j = rng.randrange(len(other))
                out[i:i] = other[j:j + rng.randint(1, 512)]
    return bytes(out[:MAX_MUTANT])


def _one_case(rng: random.Random) -> tuple[str, int]:
    """Run one mutated input; returns (kind, outcome 0=rejected 1=ok)."""
    texts, blobs = _corpus()
    if rng.random() < 0.35:
        kind = "rcol"
        data = _mutate(rng, rng.choice(blobs), rng.choice(blobs))
        try:
            decode(data)
            return kind, 1
        except ColumnarFormatError:
            return kind, 0
    errors = "quarantine" if rng.random() < 0.5 else "raise"
    kind = "dim-quarantine" if errors == "quarantine" else "dim"
    data = _mutate(rng, rng.choice(texts), rng.choice(texts))
    try:
        dim.loads(data.decode("latin-1"), errors=errors)
        return kind, 1
    except TraceFormatError:
        return kind, 0


def run(iterations: int = 1000, seed: int = 0, skip: int = 0) -> FuzzStats:
    """Execute ``iterations`` seeded cases; never raises."""
    stats = FuzzStats()
    for it in range(skip, skip + iterations):
        rng = random.Random(seed + it)
        kind = "?"
        t0 = time.monotonic()
        try:
            kind, accepted = _one_case(rng)
            elapsed = time.monotonic() - t0
            stats.accepted += accepted
            stats.rejected += 1 - accepted
        except BaseException as exc:  # the contract violation we hunt
            elapsed = time.monotonic() - t0
            stats.failures.append(FuzzFailure(
                iteration=it, seed=seed, kind=kind,
                error=f"{type(exc).__name__}: {exc}", elapsed=elapsed,
            ))
        else:
            if elapsed > CASE_SECONDS:
                stats.failures.append(FuzzFailure(
                    iteration=it, seed=seed, kind=kind,
                    error=f"case exceeded {CASE_SECONDS:.0f}s budget",
                    elapsed=elapsed,
                ))
        stats.iterations += 1
        stats.slowest = max(stats.slowest, elapsed)
    return stats


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--iterations", type=int, default=1000)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--skip", type=int, default=0,
                    help="skip this many iterations first (replay one "
                         "reported case with --skip I --iterations 1)")
    args = ap.parse_args(argv)
    stats = run(iterations=args.iterations, seed=args.seed, skip=args.skip)
    print(stats.render())
    return 0 if stats.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
