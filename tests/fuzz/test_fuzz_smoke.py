"""Tier-1 smoke slice of the mutational fuzz harness.

CI runs the full budget (``python -m tests.fuzz.harness --iterations
2000``); this keeps a couple hundred deterministic cases in every
local test run so a parser regression is caught before CI.
"""

from tests.fuzz.harness import run


def test_fuzz_smoke_dim_and_rcol():
    stats = run(iterations=200, seed=0)
    assert stats.iterations == 200
    assert stats.ok, stats.render()
    # The mutator must actually be exercising the error paths, not
    # producing 200 still-valid traces.
    assert stats.rejected > 0
