"""Unit tests of the analytic collective cost model."""

import pytest

from repro.dimemas.collectives import collective_cost, collective_steps
from repro.dimemas.machine import MachineConfig
from repro.trace.records import CollOp, GlobalOp

CFG = MachineConfig(bandwidth_mbps=100.0, latency=10e-6)


class TestSteps:
    def test_single_rank_is_free(self):
        for op in CollOp:
            assert collective_steps(op, 1) == 0.0

    @pytest.mark.parametrize("op,p,expect", [
        (CollOp.BARRIER, 2, 2), (CollOp.BARRIER, 8, 6),
        (CollOp.BCAST, 8, 3), (CollOp.REDUCE, 16, 4),
        (CollOp.ALLREDUCE, 8, 6),
        (CollOp.GATHER, 8, 7), (CollOp.SCATTER, 5, 4),
        (CollOp.ALLGATHER, 8, 10), (CollOp.REDUCE_SCATTER, 8, 10),
        (CollOp.ALLTOALL, 8, 7),
    ])
    def test_step_formulas(self, op, p, expect):
        assert collective_steps(op, p) == expect

    def test_non_power_of_two_rounds_up(self):
        assert collective_steps(CollOp.BCAST, 5) == 3  # ceil(log2 5)

    def test_steps_grow_with_ranks(self):
        for op in CollOp:
            assert collective_steps(op, 64) >= collective_steps(op, 4)


class TestCost:
    def test_linear_in_steps_and_size(self):
        rec = GlobalOp(op=CollOp.BCAST, send_size=1000, recv_size=1000)
        # 3 steps * (10us latency + 10us wire)
        assert collective_cost(rec, 8, CFG) == pytest.approx(60e-6)

    def test_uses_max_of_send_recv(self):
        a = GlobalOp(op=CollOp.REDUCE, send_size=2000, recv_size=0)
        b = GlobalOp(op=CollOp.REDUCE, send_size=0, recv_size=2000)
        assert collective_cost(a, 4, CFG) == collective_cost(b, 4, CFG)

    def test_model_factor_scales(self):
        from dataclasses import replace
        rec = GlobalOp(op=CollOp.BARRIER)
        doubled = replace(CFG, collective_model_factor=2.0)
        assert collective_cost(rec, 8, doubled) == pytest.approx(
            2 * collective_cost(rec, 8, CFG))

    def test_zero_size_costs_only_latency_terms(self):
        rec = GlobalOp(op=CollOp.BARRIER)
        assert collective_cost(rec, 2, CFG) == pytest.approx(2 * 10e-6)
