"""Tests of production/consumption pattern analysis (Table II, Fig. 5)."""

import math

import numpy as np
import pytest

from repro.core.patterns import (
    IDEAL_CONSUMPTION,
    IDEAL_PRODUCTION,
    consumption_stats,
    consumption_table,
    iter_profiles,
    production_stats,
    production_table,
    scatter_points,
)
from repro.trace.records import AccessProfile
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app


def prod(times, lo=0.0, hi=1.0):
    return AccessProfile("production", np.asarray(times, float), lo, hi)


def cons(times, lo=0.0, hi=1.0):
    return AccessProfile("consumption", np.asarray(times, float), lo, hi)


class TestProductionStats:
    def test_ideal_linear_producer(self):
        n = 1000
        p = prod(np.linspace(0, 1, n))
        s = production_stats(p)
        assert s.first_element == pytest.approx(0.0)
        assert s.quarter == pytest.approx(0.25, abs=0.01)
        assert s.half == pytest.approx(0.50, abs=0.01)
        assert s.whole == pytest.approx(1.0)

    def test_first_element_is_global_min(self):
        """Paper wording: the first final version of ANY element."""
        s = production_stats(prod([0.9, 0.2, 0.95, 0.99]))
        assert s.first_element == pytest.approx(0.2)

    def test_prefix_semantics_for_fractions(self):
        s = production_stats(prod([0.3, 0.4, 0.8, 0.9]))
        assert s.quarter == pytest.approx(0.3)   # elements[:1]
        assert s.half == pytest.approx(0.4)      # elements[:2]
        assert s.whole == pytest.approx(0.9)

    def test_all_nan_profile(self):
        s = production_stats(prod([np.nan, np.nan]))
        assert all(math.isnan(v) for v in (s.first_element, s.quarter, s.half, s.whole))

    def test_kind_check(self):
        with pytest.raises(ValueError):
            production_stats(cons([0.5]))

    def test_as_percent(self):
        s = production_stats(prod([0.5, 0.5]))
        assert s.as_percent()["whole"] == pytest.approx(50.0)


class TestConsumptionStats:
    def test_ideal_linear_consumer(self):
        s = consumption_stats(cons(np.linspace(0, 1, 1000)))
        assert s.nothing == pytest.approx(0.0)
        assert s.quarter == pytest.approx(0.25, abs=0.01)
        assert s.half == pytest.approx(0.50, abs=0.01)

    def test_independent_work_shows_in_nothing(self):
        """BT-style: nothing loaded before 13.68% of the phase."""
        s = consumption_stats(cons(np.full(100, 0.1368)))
        assert s.nothing == pytest.approx(0.1368)
        assert s.quarter == pytest.approx(0.1368)

    def test_suffix_semantics(self):
        s = consumption_stats(cons([0.1, 0.2, 0.7, 0.9]))
        assert s.nothing == pytest.approx(0.1)
        assert s.quarter == pytest.approx(0.2)   # elements[1:]
        assert s.half == pytest.approx(0.7)      # elements[2:]

    def test_never_needed_elements_pass_whole_phase(self):
        s = consumption_stats(cons([0.3, np.nan, np.nan, np.nan]))
        assert s.quarter == pytest.approx(1.0)

    def test_kind_check(self):
        with pytest.raises(ValueError):
            consumption_stats(prod([0.5]))


class TestIdealRows:
    def test_paper_ideal_production_row(self):
        assert IDEAL_PRODUCTION.first_element == 0.0
        assert IDEAL_PRODUCTION.quarter == 0.25
        assert IDEAL_PRODUCTION.half == 0.50
        assert IDEAL_PRODUCTION.whole == 1.0

    def test_paper_ideal_consumption_row(self):
        assert IDEAL_CONSUMPTION.nothing == 0.0
        assert IDEAL_CONSUMPTION.quarter == 0.25
        assert IDEAL_CONSUMPTION.half == 0.50


class TestTraceAggregation:
    def make_trace(self, prod_anchors, cons_anchors):
        app = make_pipeline_app(elements=200, prod=prod_anchors,
                                cons=cons_anchors)
        return run_traced(app, 3, mips=1000.0).trace

    def test_anchored_app_recovers_its_anchors(self):
        tr = self.make_trace(
            prod_anchors=[(0.0, 0.663), (0.25, 0.948), (0.5, 0.982), (1.0, 0.998)],
            cons_anchors=[(0.0, 0.02), (0.25, 0.1), (0.5, 0.2), (1.0, 0.4)],
        )
        p = production_table(tr, channel=0)
        assert p.first_element == pytest.approx(0.663, abs=0.02)
        assert p.quarter == pytest.approx(0.948, abs=0.02)
        assert p.whole == pytest.approx(0.998, abs=0.02)

    def test_consumption_aggregation_scaled_by_interval(self):
        """Consumption fractions shrink when the interval spans more
        than the consuming burst — aggregated values stay ordered."""
        tr = self.make_trace(
            prod_anchors=[(0.0, 0.9), (1.0, 1.0)],
            cons_anchors=[(0.0, 0.1), (0.25, 0.2), (0.5, 0.3), (1.0, 0.5)],
        )
        c = consumption_table(tr, channel=0)
        assert 0 < c.nothing <= c.quarter <= c.half

    def test_iter_profiles_filters(self, pipeline_trace):
        prods = list(iter_profiles(pipeline_trace, "production", channel=0))
        assert prods
        assert all(p.kind == "production" for _, _, p in prods)
        none_for_rank = list(iter_profiles(pipeline_trace, "production",
                                           channel=0, rank=3))
        assert none_for_rank == []  # last rank sends nothing

    def test_invalid_kind(self, pipeline_trace):
        with pytest.raises(ValueError):
            list(iter_profiles(pipeline_trace, "bogus"))

    def test_empty_aggregate_is_nan(self):
        tr = run_traced(lambda c: c.compute(10), 1).trace
        t = production_table(tr)
        assert math.isnan(t.whole)


class TestScatterPoints:
    def test_points_collected_with_streams(self):
        app = make_pipeline_app(elements=50)
        tr = run_traced(app, 2, record_streams=True).trace
        x, y = scatter_points(tr, "production")
        assert x.size > 0 and x.size == y.size
        assert (0 <= x).all() and (x <= 1).all()
        assert y.max() < 50

    def test_no_streams_no_points(self, pipeline_trace):
        x, y = scatter_points(pipeline_trace, "production")
        assert x.size == 0

    def test_max_points_subsampling(self):
        app = make_pipeline_app(elements=100)
        tr = run_traced(app, 2, record_streams=True).trace
        x, y = scatter_points(tr, "production", max_points=17)
        assert x.size == 17
