"""Tests of the phase-level overlap analysis (future-work extension)."""

import pytest

from repro.core.phases import phase_overlap_potential
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app


def traced(prod, cons, work=1_000_000):
    app = make_pipeline_app(elements=100, work=work, iterations=2,
                            prod=prod, cons=cons)
    return run_traced(app, 3, mips=1000.0).trace


class TestConsumptionSide:
    def test_independent_work_measured(self):
        tr = traced(prod=[(0.0, 0.9), (1.0, 1.0)],
                    cons=[(0.0, 0.3), (1.0, 0.5)])
        pot = phase_overlap_potential(tr, channel=0)
        assert pot.consumption_intervals > 0
        # loads start at 30% of the consuming burst; intervals extend
        # past the burst so the fraction is diluted but clearly positive
        assert 0.05 < pot.independent_fraction < 0.5

    def test_immediate_consumer_has_none(self):
        tr = traced(prod=[(0.0, 0.9), (1.0, 1.0)],
                    cons=[(0.0, 0.0), (1.0, 0.0)])
        pot = phase_overlap_potential(tr, channel=0)
        assert pot.independent_fraction == pytest.approx(0.0, abs=0.01)


class TestProductionSide:
    def test_late_producer_has_preproduction_headroom(self):
        tr = traced(prod=[(0.0, 0.95), (1.0, 1.0)],
                    cons=[(0.0, 0.0), (1.0, 0.2)])
        pot = phase_overlap_potential(tr, channel=0)
        assert pot.preproduction_fraction > 0.5

    def test_linear_producer_has_little(self):
        tr = traced(prod=[(0.0, 0.0), (1.0, 1.0)],
                    cons=[(0.0, 0.0), (1.0, 0.2)])
        pot = phase_overlap_potential(tr, channel=0)
        assert pot.preproduction_fraction == pytest.approx(0.0, abs=0.01)


class TestAggregate:
    def test_reorderable_sums_both_sides(self):
        tr = traced(prod=[(0.0, 0.5), (1.0, 1.0)],
                    cons=[(0.0, 0.5), (1.0, 0.9)])
        pot = phase_overlap_potential(tr, channel=0)
        assert pot.reorderable_seconds == pytest.approx(
            pot.independent_consumption + pot.pre_production)

    def test_paper_narrative_bt_vs_sweep3d(self):
        """BT has phase-level headroom (its 13.7% independent work);
        Sweep3D has essentially none on the consumption side."""
        from repro.apps import get_app
        bt = get_app("bt").trace(nranks=8).trace
        sw = get_app("sweep3d").trace(nranks=8).trace
        pot_bt = phase_overlap_potential(bt, channel=0)
        pot_sw = phase_overlap_potential(sw, channel=0)
        assert pot_bt.independent_fraction > pot_sw.independent_fraction

    def test_str_renders(self):
        tr = traced(prod=[(0.0, 0.5), (1.0, 1.0)],
                    cons=[(0.0, 0.1), (1.0, 0.9)])
        assert "phase potential" in str(phase_overlap_potential(tr))

    def test_empty_trace(self):
        tr = run_traced(lambda c: c.compute(10), 1).trace
        pot = phase_overlap_potential(tr)
        assert pot.reorderable_seconds == 0.0
        assert pot.independent_fraction == 0.0
