"""Tests of the packed columnar trace codec.

The codec is the backbone of the trace cache, the dispatch store, and
the replay planner, so three properties are non-negotiable: round-trips
are lossless for every record type, damaged bytes are *rejected* (never
partially decoded), and the content digest tracks replay semantics only.
"""

import struct

import numpy as np
import pytest

from repro.trace import dim
from repro.trace.columnar import (
    MAGIC,
    VERSION,
    ColumnarFormatError,
    columnar_of,
    decode,
    from_traceset,
)
from repro.trace.records import (
    AccessProfile,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)


def _profile(kind: str) -> AccessProfile:
    return AccessProfile(
        kind=kind,
        times=np.linspace(0.25, 0.75, 5),
        interval_start=0.125,
        interval_end=0.875,
    )


def make_full_trace() -> TraceSet:
    """A small trace exercising every record type and edge flavour:
    optional fields present and absent, zero-byte sends, explicit
    eager/rendezvous protocol pins, multi-request waits, every
    collective op, and both access-profile kinds."""
    r0 = [
        CpuBurst(1e-3),
        CpuBurst(2e-3, instructions=123_456),
        Event("iteration", value=1),
        Send(peer=1, tag=7, size=0),                      # pure sync
        Send(peer=1, tag=8, size=4096, channel=2, sub=3,
             elements=512, context=1, rendezvous=False,
             production=_profile("production")),
        ISend(peer=1, tag=9, size=1 << 20, request=41, rendezvous=True),
        Wait((41,)),
        Event("iteration", value=2),
    ]
    r1 = [
        CpuBurst(5e-4),
        Recv(peer=0, tag=7, size=0),
        Recv(peer=0, tag=8, size=4096, channel=2, sub=3,
             elements=512, context=1,
             consumption=_profile("consumption")),
        IRecv(peer=0, tag=9, size=1 << 20, request=17),
        IRecv(peer=0, tag=10, size=64, request=18),
        Wait((17, 18)),
        Send(peer=0, tag=10, size=64),
    ]
    # rank 1 needs a matching send for tag 10's IRecv in replay terms,
    # but the codec does not care about matchability — only fidelity.
    colls = [
        GlobalOp(op=op, root=i % 2, send_size=8 * i, recv_size=16 * i,
                 seq=i, context=i % 3, members=2)
        for i, op in enumerate(CollOp)
    ]
    return TraceSet(
        [ProcessTrace(0, r0 + colls), ProcessTrace(1, r1 + colls)],
        meta={"app": "codec-test", "nranks": 2, "nested": {"k": [1, 2]}},
    )


def assert_traces_equal(a: TraceSet, b: TraceSet) -> None:
    """Field-exact equality, including what ``dim`` does not serialize."""
    assert dim.dumps(a) == dim.dumps(b)
    assert dict(a.meta) == dict(b.meta)
    for pa, pb in zip(a.processes, b.processes):
        assert len(pa.records) == len(pb.records)
        for ra, rb in zip(pa.records, pb.records):
            assert type(ra) is type(rb)
            for rec_a, rec_b in ((ra, rb),):
                for attr in ("production", "consumption"):
                    prof_a = getattr(rec_a, attr, None)
                    prof_b = getattr(rec_b, attr, None)
                    assert (prof_a is None) == (prof_b is None)
                    if prof_a is not None:
                        assert prof_a.kind == prof_b.kind
                        assert prof_a.interval_start == prof_b.interval_start
                        assert prof_a.interval_end == prof_b.interval_end
                        assert np.array_equal(prof_a.times, prof_b.times)


class TestRoundTrip:
    def test_all_record_types_lossless(self):
        ts = make_full_trace()
        restored = decode(from_traceset(ts).encode()).to_traceset()
        assert_traces_equal(ts, restored)

    def test_without_profiles_drops_only_profiles(self):
        ts = make_full_trace()
        restored = decode(from_traceset(ts, with_profiles=False).encode())
        back = restored.to_traceset()
        # dim renders profiles as AP: lines — everything else must match
        strip = lambda text: [  # noqa: E731
            ln for ln in text.splitlines() if not ln.startswith("AP:")
        ]
        assert strip(dim.dumps(back)) == strip(dim.dumps(ts))
        assert all(
            getattr(rec, "production", None) is None
            and getattr(rec, "consumption", None) is None
            for proc in back.processes for rec in proc.records
        )

    def test_empty_and_asymmetric_ranks(self):
        ts = TraceSet([
            ProcessTrace(0, [CpuBurst(1e-3)]),
            ProcessTrace(1, []),                    # empty rank
            ProcessTrace(2, [Wait((9,)), Wait((1, 2, 3, 4))]),
        ])
        restored = decode(from_traceset(ts).encode()).to_traceset()
        assert dim.dumps(restored) == dim.dumps(ts)
        assert restored.processes[2].records[0].requests == (9,)
        assert restored.processes[2].records[1].requests == (1, 2, 3, 4)

    def test_float_durations_bit_exact(self):
        durs = [1e-9, 0.1 + 0.2, 1 / 3, 6.02e23]
        ts = TraceSet([ProcessTrace(0, [CpuBurst(d) for d in durs])])
        back = decode(from_traceset(ts).encode()).to_traceset()
        assert [r.duration for r in back.processes[0].records] == durs

    def test_unknown_record_type_rejected_at_encode(self):
        ts = TraceSet([ProcessTrace(0, [object()])])
        with pytest.raises(TypeError, match="cannot encode"):
            from_traceset(ts)


class TestRejection:
    @pytest.fixture(scope="class")
    def blob(self):
        return from_traceset(make_full_trace()).encode()

    def test_every_truncation_rejected(self, blob):
        for cut in range(len(blob)):
            with pytest.raises(ColumnarFormatError):
                decode(blob[:cut])

    def test_every_single_byte_corruption_rejected(self, blob):
        for pos in range(len(blob)):
            damaged = bytearray(blob)
            damaged[pos] ^= 0x5A
            with pytest.raises(ColumnarFormatError):
                decode(bytes(damaged))

    def test_trailing_garbage_rejected(self, blob):
        with pytest.raises(ColumnarFormatError, match="trailing"):
            decode(blob + b"\x00")

    def test_garbage_and_empty_rejected(self):
        for junk in (b"", b"RCO", b"not a trace at all", b"\x00" * 64):
            with pytest.raises(ColumnarFormatError):
                decode(junk)

    def test_foreign_version_refused(self, blob):
        future = blob[:4] + struct.pack("<I", VERSION + 1) + blob[8:]
        with pytest.raises(ColumnarFormatError, match="version"):
            decode(future)
        assert blob[:4] == MAGIC  # layout guard for this very test


class TestDigest:
    def test_digest_ignores_meta_and_profiles(self):
        ts = make_full_trace()
        with_prof = from_traceset(ts, with_profiles=True)
        without = from_traceset(ts, with_profiles=False)
        assert with_prof.digest == without.digest
        stripped = TraceSet(list(ts.processes), meta={})
        assert from_traceset(stripped).digest == with_prof.digest

    def test_digest_survives_codec_round_trip(self):
        col = from_traceset(make_full_trace())
        assert decode(col.encode()).digest == col.digest

    def test_digest_tracks_replay_semantics(self):
        ts = make_full_trace()
        changed = TraceSet(
            [
                ProcessTrace(0, [CpuBurst(9.0)] + list(ts.processes[0].records)),
                ts.processes[1],
            ],
            meta=dict(ts.meta),
        )
        assert from_traceset(changed).digest != from_traceset(ts).digest

    def test_columnar_of_memoizes(self):
        ts = make_full_trace()
        assert columnar_of(ts) is columnar_of(ts)
        col = columnar_of(ts)
        assert columnar_of(col) is col
