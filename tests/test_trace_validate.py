"""Tests of structural trace validation."""

import pytest

from repro.trace.records import (
    CollOp,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)
from repro.trace.validate import ValidationError, validate


def two_rank(recs0, recs1) -> TraceSet:
    return TraceSet([ProcessTrace(0, recs0), ProcessTrace(1, recs1)])


class TestValidTraces:
    def test_minimal_matched_pair(self):
        ts = two_rank(
            [Send(peer=1, tag=0, size=8)],
            [Recv(peer=0, tag=0, size=8)],
        )
        assert validate(ts).ok

    def test_nonblocking_discipline(self):
        ts = two_rank(
            [ISend(peer=1, tag=0, size=8, request=1), Wait((1,))],
            [IRecv(peer=0, tag=0, size=8, request=5), Wait((5,))],
        )
        assert validate(ts).ok

    def test_empty_processes_valid(self):
        assert validate(two_rank([], [])).ok

    def test_traced_pipeline_is_valid(self, pipeline_trace):
        assert validate(pipeline_trace).ok


class TestRequestIssues:
    def test_duplicate_request_id(self):
        ts = two_rank(
            [ISend(peer=1, tag=0, size=8, request=1),
             ISend(peer=1, tag=1, size=8, request=1), Wait((1,))],
            [Recv(peer=0, tag=0, size=8), Recv(peer=0, tag=1, size=8)],
        )
        rep = validate(ts)
        assert any("duplicate" in m for m in rep.issues)

    def test_wait_on_unknown_request(self):
        ts = two_rank([Wait((99,))], [])
        assert any("unknown request" in m for m in validate(ts).issues)

    def test_request_waited_twice(self):
        ts = two_rank(
            [ISend(peer=1, tag=0, size=8, request=1), Wait((1,)), Wait((1,))],
            [Recv(peer=0, tag=0, size=8)],
        )
        assert any("twice" in m for m in validate(ts).issues)

    def test_dangling_request(self):
        ts = two_rank(
            [ISend(peer=1, tag=0, size=8, request=1)],
            [Recv(peer=0, tag=0, size=8)],
        )
        assert any("never waited" in m for m in validate(ts).issues)


class TestMatchingIssues:
    def test_unmatched_send(self):
        ts = two_rank([Send(peer=1, tag=0, size=8)], [])
        assert any("1 send(s) vs 0 recv(s)" in m for m in validate(ts).issues)

    def test_size_mismatch(self):
        ts = two_rank(
            [Send(peer=1, tag=0, size=8)],
            [Recv(peer=0, tag=0, size=16)],
        )
        assert any("size mismatch" in m for m in validate(ts).issues)

    def test_out_of_range_peer(self):
        ts = two_rank([Send(peer=7, tag=0, size=8)], [])
        assert any("out-of-range" in m for m in validate(ts).issues)

    def test_channel_separates_keys(self):
        ts = two_rank(
            [Send(peer=1, tag=0, size=8, channel=0)],
            [Recv(peer=0, tag=0, size=8, channel=1)],
        )
        assert not validate(ts).ok


class TestCollectiveAlignment:
    def test_aligned(self):
        g = lambda: GlobalOp(op=CollOp.BARRIER, seq=1)
        assert validate(two_rank([g()], [g()])).ok

    def test_misaligned_op(self):
        ts = two_rank(
            [GlobalOp(op=CollOp.BARRIER, seq=1)],
            [GlobalOp(op=CollOp.BCAST, seq=1)],
        )
        assert any("collective" in m for m in validate(ts).issues)

    def test_missing_collective(self):
        ts = two_rank([GlobalOp(op=CollOp.BARRIER, seq=1)], [])
        assert any("collective" in m for m in validate(ts).issues)


class TestStrictMode:
    def test_raises_on_issue(self):
        ts = two_rank([Send(peer=1, tag=0, size=8)], [])
        with pytest.raises(ValidationError):
            validate(ts, strict=True)

    def test_no_raise_when_clean(self, pipeline_trace):
        validate(pipeline_trace, strict=True)

    def test_report_bool(self):
        ts = two_rank([Send(peer=1, tag=0, size=8)], [])
        assert not validate(ts)
        assert validate(two_rank([], []))
