"""Property-based perturbation contracts (hypothesis).

Two contracts the fault-injection layer must hold for *every* input,
explored with hypothesis instead of hand-picked cases:

* **Zero-magnitude is the pristine platform** — any schedule made of
  factor-1.0 bandwidth windows, zero-extra latency windows,
  zero-amplitude noise, and factor-1.0 stragglers (empty schedules
  included) replays every application skeleton bitwise-identically to
  an unperturbed replay, whatever the seed or window placement;
* **Seeded determinism, independent of process count** — the
  resilience sweep's ``result_digest`` is a pure function of its
  inputs: repeating the sweep, and running it through a 2-worker pool
  instead of serially, reproduce the digest exactly.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.experiments import AppExperiment, ExperimentEngine
from repro.experiments.resilience import resilience_sweep
from repro.perturb import (
    BandwidthWindow,
    CpuNoise,
    LatencyWindow,
    PerturbationSchedule,
    Straggler,
)

APPS_POOL = ("sweep3d", "pop", "alya", "specfem3d", "bt", "cg")

_SETTINGS = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

#: (trace, machine, baseline result) per app, traced once per session.
_BASELINES: dict[str, tuple] = {}


def _baseline(app: str):
    if app not in _BASELINES:
        trace = AppExperiment(app, nranks=4).trace("original")
        machine = MachineConfig.paper_testbed(app)
        _BASELINES[app] = (trace, machine, simulate(trace, machine))
    return _BASELINES[app]


def _same(a, b) -> bool:
    return (a.duration == b.duration
            and a.states == b.states
            and [(m.src, m.dst, m.size, m.t_send, m.t_recv)
                 for m in a.messages]
            == [(m.src, m.dst, m.size, m.t_send, m.t_recv)
                for m in b.messages])


@st.composite
def noop_schedules(draw) -> PerturbationSchedule:
    """Schedules whose every ingredient has zero magnitude.

    Window bounds are drawn freely (disjoint by construction: each
    group's windows are laid out left to right), seeds are arbitrary —
    nothing here may influence a replay.
    """
    seed = draw(st.integers(min_value=0, max_value=2**63 - 1))

    def windows(make):
        out, t = [], 0.0
        for _ in range(draw(st.integers(0, 2))):
            t0 = t + draw(st.floats(0.0, 1.0, allow_nan=False))
            t1 = t0 + draw(st.floats(1e-6, 1.0, allow_nan=False))
            out.append(make(t0, t1))
            t = t1
        return tuple(out)

    noise = ()
    if draw(st.booleans()):
        ranks = draw(st.one_of(
            st.none(), st.sets(st.integers(0, 3), max_size=3).map(tuple)))
        noise = (CpuNoise(0.0, ranks=ranks),)
    stragglers = ()
    if draw(st.booleans()):
        stragglers = (Straggler(draw(st.integers(0, 3)), 1.0),)
    return PerturbationSchedule(
        seed=seed,
        bandwidth=windows(lambda t0, t1: BandwidthWindow(t0, t1, 1.0)),
        latency=windows(lambda t0, t1: LatencyWindow(t0, t1, 0.0)),
        cpu_noise=noise,
        stragglers=stragglers,
    )


class TestZeroMagnitudeIdentity:
    @_SETTINGS
    @given(app=st.sampled_from(APPS_POOL), sched=noop_schedules())
    def test_noop_schedule_is_bitwise_baseline(self, app, sched):
        trace, machine, base = _baseline(app)
        assert sched.normalized().is_noop()
        assert _same(base, simulate(trace, machine, perturb=sched))
        # Carried by the machine, the schedule collapses to the very
        # same (pristine) platform object state: equal cache identity.
        assert machine.with_platform(perturb=sched) == machine


class TestSeededDigestDeterminism:
    @pytest.fixture(scope="class")
    def pool_engine(self):
        with ExperimentEngine(jobs=2) as engine:
            yield engine

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           kind=st.sampled_from(("straggler", "cpu-noise", "latency-spike")))
    def test_digest_stable_across_runs_and_job_counts(
            self, pool_engine, seed, kind):
        kwargs = dict(scenarios=[kind], seed=seed, nranks=4, chunks=2)
        serial_a = resilience_sweep(["cg"], **kwargs)
        serial_b = resilience_sweep(["cg"], **kwargs)
        pooled = resilience_sweep(["cg"], engine=pool_engine, **kwargs)
        assert serial_a.result_digest() == serial_b.result_digest()
        assert serial_a.result_digest() == pooled.result_digest()
