"""Tests of the visualization/analysis stage."""

import io

import pytest

from repro.core.transform import overlap_transform
from repro.dimemas.replay import simulate
from repro.paraver import (
    compare,
    comm_stats,
    iteration_bounds,
    profile_table,
    render_comparison,
    render_gantt,
    render_svg,
    sample_states,
    state_matrix,
)
from repro.trace import prv


@pytest.fixture
def result(pipeline_trace, machine):
    return simulate(pipeline_trace, machine)


@pytest.fixture
def overlapped_result(pipeline_trace, machine):
    return simulate(overlap_transform(pipeline_trace)[0], machine)


class TestSampling:
    def test_grid_shape(self, result):
        grid, lo, hi = sample_states(result, 50)
        assert len(grid) == result.nranks
        assert all(len(row) == 50 for row in grid)
        assert lo == 0.0 and hi == result.duration

    def test_majority_state_is_running_somewhere(self, result):
        grid, _, _ = sample_states(result, 40)
        assert any("Running" in row for row in grid)

    def test_invalid_bins(self, result):
        with pytest.raises(ValueError):
            sample_states(result, 0)

    def test_window_subrange(self, result):
        grid, lo, hi = sample_states(result, 10, t0=0.0,
                                     t1=result.duration / 2)
        assert hi == pytest.approx(result.duration / 2)


class TestGantt:
    def test_contains_all_ranks(self, result):
        text = render_gantt(result, width=60)
        for r in range(result.nranks):
            assert f"rank {r:>3}" in text

    def test_width_respected(self, result):
        text = render_gantt(result, width=33, legend=False)
        row = next(l for l in text.splitlines() if l.startswith("rank"))
        assert len(row.split("|")[1]) == 33

    def test_comparison_reports_improvement(self, result, overlapped_result):
        text = render_comparison(result, overlapped_result, width=40)
        assert "% improvement" in text and "makespan" in text

    def test_title_and_legend(self, result):
        text = render_gantt(result, title="MY TITLE")
        assert text.startswith("MY TITLE")
        assert "legend:" in text


class TestStats:
    def test_state_matrix_shape(self, result):
        mat, names = state_matrix(result)
        assert mat.shape == (result.nranks, len(names))
        assert "Running" in names

    def test_profile_table_rows(self, result):
        table = profile_table(result)
        lines = table.splitlines()
        assert len(lines) == result.nranks + 2  # header + ranks + all
        assert lines[-1].strip().startswith("all")

    def test_profile_table_absolute(self, result):
        assert "%" not in profile_table(result, percent=False).splitlines()[1]

    def test_comm_stats(self, result):
        cs = comm_stats(result)
        assert cs.count == len(result.messages)
        assert cs.total_bytes > 0
        assert cs.mean_flight > 0
        assert "messages" in str(cs)

    def test_comm_stats_empty(self):
        from repro.dimemas.results import SimResult
        empty = SimResult(nranks=1, duration=1.0, rank_end=[1.0],
                          states=[[]], messages=[], events=[[]])
        assert comm_stats(empty).count == 0


class TestCompare:
    def test_timing_and_deltas(self, result, overlapped_result):
        c = compare(result, overlapped_result)
        assert c.timing.t_original == result.duration
        deltas = c.state_delta()
        assert deltas.get("Running", 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_report_renders(self, result, overlapped_result):
        text = compare(result, overlapped_result).report(width=40)
        assert "state deltas" in text and "timing" in text

    def test_size_mismatch_rejected(self, result):
        from repro.dimemas.results import SimResult
        other = SimResult(nranks=1, duration=1.0, rank_end=[1.0],
                          states=[[]], messages=[], events=[[]])
        with pytest.raises(ValueError):
            compare(result, other)


class TestIterationBounds:
    def test_slices_by_event(self, result):
        lo, hi = iteration_bounds(result, 0, 2)
        assert 0.0 <= lo < hi <= result.duration

    def test_missing_events(self, result):
        with pytest.raises(ValueError):
            iteration_bounds(result, 0, 2, name="nonexistent")


class TestSvg:
    def test_well_formed_document(self, result):
        doc = render_svg(result, title="t")
        assert doc.startswith("<svg") and doc.rstrip().endswith("</svg>")
        assert doc.count("<rect") > result.nranks  # states + legend swatches

    def test_message_lines_drawn(self, result):
        assert "<line" in render_svg(result)

    def test_message_lines_optional(self, result):
        assert "<line" not in render_svg(result, draw_messages=False)

    def test_write_to_path(self, result, tmp_path):
        from repro.paraver import write_svg
        path = tmp_path / "x.svg"
        write_svg(result, path)
        assert path.read_text().startswith("<svg")


class TestPrvExport:
    def test_header_and_records(self, result):
        buf = io.StringIO()
        prv.write_prv(result, buf)
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("#Paraver")
        kinds = {l.split(":", 1)[0] for l in lines[1:]}
        assert kinds >= {"1", "3"}  # states and communications

    def test_pcf_lists_states(self, tmp_path):
        path = tmp_path / "t.pcf"
        prv.write_pcf(path)
        text = path.read_text()
        assert "STATES" in text and "Running" in text

    def test_records_time_sorted(self, result):
        buf = io.StringIO()
        prv.write_prv(result, buf)
        times = []
        for line in buf.getvalue().splitlines()[1:]:
            parts = line.split(":")
            times.append(int(parts[5]))
        assert times == sorted(times)
