"""Tests of sub-communicators (``comm.split``) end to end."""

import numpy as np

from repro.core.transform import overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.smpi import Runtime
from repro.trace.records import GlobalOp, ISend, Send
from repro.trace.validate import validate
from repro.tracer import run_traced

CFG = MachineConfig(bandwidth_mbps=100.0, latency=5e-6)


class TestSplitSemantics:
    def test_row_and_column_communicators(self):
        """The NPB-CG pattern: a 2-D grid split into rows and columns."""
        def main(comm):
            px = 2
            row = comm.split(color=comm.rank // px, key=comm.rank)
            col = comm.split(color=comm.rank % px, key=comm.rank)
            return (row.rank, row.size, col.rank, col.size)
        out = Runtime(4, main).run()
        assert out == [(0, 2, 0, 2), (1, 2, 0, 2), (0, 2, 1, 2), (1, 2, 1, 2)]

    def test_key_orders_members(self):
        def main(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank
        assert Runtime(3, main).run() == [2, 1, 0]

    def test_undefined_color_gets_none(self):
        def main(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            return sub if sub is None else sub.size
        out = Runtime(3, main).run()
        assert out == [None, 2, 2]

    def test_p2p_within_subcomm_uses_local_ranks(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                sub.send(f"hello-{comm.rank}", 1)
                return None
            return sub.recv(0)
        out = Runtime(4, main).run()
        # world 2 receives from world 0; world 3 from world 1
        assert out[2] == "hello-0" and out[3] == "hello-1"

    def test_contexts_isolate_identical_tags(self):
        """Same (peer, tag) in two communicators must not cross-match."""
        def main(comm):
            sub = comm.split(color=0)  # same membership as world
            if comm.rank == 0:
                comm.send("world", 1, tag=5)
                sub.send("sub", 1, tag=5)
            else:
                got_sub = sub.recv(0, tag=5)
                got_world = comm.recv(0, tag=5)
                return (got_world, got_sub)
        assert Runtime(2, main).run()[1] == ("world", "sub")

    def test_collectives_within_subcomm(self):
        def main(comm):
            row = comm.split(color=comm.rank // 2, key=comm.rank)
            total = row.allreduce(comm.rank)
            gathered = row.allgather(comm.rank)
            return (total, gathered)
        out = Runtime(4, main).run()
        assert out[0] == (1, [0, 1]) and out[1] == (1, [0, 1])
        assert out[2] == (5, [2, 3]) and out[3] == (5, [2, 3])

    def test_nested_split(self):
        def main(comm):
            half = comm.split(color=comm.rank // 4, key=comm.rank)
            quarter = half.split(color=half.rank // 2, key=half.rank)
            return quarter.allreduce(comm.rank)
        out = Runtime(8, main).run()
        assert out == [1, 1, 5, 5, 9, 9, 13, 13]

    def test_split_of_subcomm_world_ranks_preserved(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)    # evens / odds
            if sub is None:
                return None
            sub2 = sub.split(color=0, key=sub.rank)
            # members of sub2 are the same world ranks as sub
            if sub2.rank == 0 and sub2.size > 1:
                sub2.send(comm.rank * 100, 1)
                return None
            return sub2.recv(0)
        out = Runtime(4, main).run()
        assert out[2] == 0 and out[3] == 100


class TestTracedSubcomms:
    def app(self, comm):
        row = comm.split(color=comm.rank // 2, key=comm.rank)
        buf = np.zeros(64)
        offs = np.arange(64)
        for _ in range(2):
            comm.compute(100_000, stores=[(buf, offs)])
            if row.rank == 0:
                row.send(buf, 1, tag=1)
            else:
                inb = np.zeros(64)
                row.Recv(inb, 0, tag=1)
                comm.compute(50_000, loads=[(inb, offs)])
            row.allreduce(1.0)
        comm.barrier()

    def test_trace_validates(self):
        tr = run_traced(self.app, 4).trace
        validate(tr, strict=True)

    def test_records_carry_contexts(self):
        tr = run_traced(self.app, 4).trace
        contexts = {r.context for p in tr for r in p
                    if isinstance(r, (Send, ISend))}
        assert len(contexts) >= 2  # world barrier + subcomm traffic

    def test_dim_roundtrip_preserves_contexts(self):
        from repro.trace import dim
        tr = run_traced(self.app, 4).trace
        assert dim.dumps(dim.loads(dim.dumps(tr))) == dim.dumps(tr)

    def test_transform_and_replay(self):
        tr = run_traced(self.app, 4).trace
        base = simulate(tr, CFG).duration
        ov, stats = overlap_transform(tr)
        validate(ov, strict=True)
        dur = simulate(ov, CFG).duration
        assert 0 < dur <= base * 1.2
        assert stats.messages_transformed > 0

    def test_analytic_collectives_record_membership(self):
        tr = run_traced(self.app, 4, decompose_collectives=False).trace
        gops = [r for p in tr for r in p if isinstance(r, GlobalOp)]
        assert any(g.members == 2 for g in gops)    # row allreduces
        assert any(g.members == 4 for g in gops)    # world barrier
        res = simulate(tr, CFG)
        assert res.duration > 0
