"""Tests of chunk geometry and chunk-time reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import (
    DEFAULT_CHUNKS,
    chunk_needed_times,
    chunk_ready_times,
    plan_chunks,
)
from repro.trace.records import AccessProfile


class TestPlanChunks:
    def test_paper_default_is_four(self):
        assert DEFAULT_CHUNKS == 4

    def test_even_split(self):
        plan = plan_chunks(size=800, elements=100, chunks=4)
        assert plan.nchunks == 4
        assert plan.bounds.tolist() == [0, 25, 50, 75, 100]
        assert plan.sizes.tolist() == [200, 200, 200, 200]

    def test_sizes_sum_exactly_with_remainders(self):
        plan = plan_chunks(size=1003, elements=10, chunks=3)
        assert int(plan.sizes.sum()) == 1003

    def test_single_element_message_is_one_chunk(self):
        plan = plan_chunks(size=8, elements=1, chunks=4)
        assert plan.nchunks == 1 and plan.sizes.tolist() == [8]

    def test_cannot_chunk_finer_than_bytes(self):
        plan = plan_chunks(size=2, elements=100, chunks=4)
        assert plan.nchunks == 2

    def test_span(self):
        plan = plan_chunks(size=64, elements=8, chunks=4)
        assert plan.span(0) == (0, 2) and plan.span(3) == (6, 8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_chunks(-1, 10)
        with pytest.raises(ValueError):
            plan_chunks(10, 10, chunks=0)

    @given(size=st.integers(0, 10_000), elements=st.integers(0, 5_000),
           chunks=st.integers(1, 32))
    @settings(max_examples=200, deadline=None)
    def test_property_invariants(self, size, elements, chunks):
        plan = plan_chunks(size, elements, chunks)
        assert 1 <= plan.nchunks <= chunks
        assert int(plan.sizes.sum()) == size
        assert (plan.sizes >= 0).all()
        bounds = plan.bounds
        assert bounds[0] == 0 and bounds[-1] == max(elements, 1)
        assert (np.diff(bounds) >= 0).all()


def prod_profile(times, lo=0.0, hi=1.0):
    return AccessProfile("production", np.asarray(times, float), lo, hi)


def cons_profile(times, lo=0.0, hi=1.0):
    return AccessProfile("consumption", np.asarray(times, float), lo, hi)


class TestChunkTimes:
    def test_ready_is_per_chunk_max(self):
        p = prod_profile([0.1, 0.9, 0.2, 0.3])
        plan = plan_chunks(32, 4, 2)
        ready = chunk_ready_times(p, plan)
        assert ready.tolist() == [0.9, 0.3]

    def test_needed_is_per_chunk_min(self):
        p = cons_profile([0.5, 0.2, 0.9, 0.4])
        plan = plan_chunks(32, 4, 2)
        needed = chunk_needed_times(p, plan)
        assert needed.tolist() == [0.2, 0.4]

    def test_nan_chunks_stay_nan(self):
        p = prod_profile([np.nan, np.nan, 0.5, 0.5])
        plan = plan_chunks(32, 4, 2)
        ready = chunk_ready_times(p, plan)
        assert np.isnan(ready[0]) and ready[1] == 0.5

    def test_times_clipped_to_interval(self):
        p = prod_profile([5.0, -1.0], lo=0.0, hi=1.0)
        plan = plan_chunks(16, 2, 2)
        assert chunk_ready_times(p, plan).tolist() == [1.0, 0.0]

    def test_kind_mismatch_rejected(self):
        plan = plan_chunks(16, 2, 2)
        with pytest.raises(ValueError):
            chunk_ready_times(cons_profile([0, 0]), plan)
        with pytest.raises(ValueError):
            chunk_needed_times(prod_profile([0, 0]), plan)

    def test_element_count_mismatch_rejected(self):
        plan = plan_chunks(16, 2, 2)
        with pytest.raises(ValueError):
            chunk_ready_times(prod_profile([0.1, 0.2, 0.3]), plan)

    @given(n=st.integers(1, 200), chunks=st.integers(1, 8),
           seed=st.integers(0, 999))
    @settings(max_examples=100, deadline=None)
    def test_property_monotone_under_prefix_order(self, n, chunks, seed):
        """With element times sorted ascending, ready times are
        non-decreasing across chunks (the ideal-producer property)."""
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0, 1, n))
        plan = plan_chunks(n * 8, n, chunks)
        ready = chunk_ready_times(prod_profile(times), plan)
        valid = ready[~np.isnan(ready)]
        assert (np.diff(valid) >= -1e-12).all()
