"""Tests of the deterministic cooperative MPI runtime."""

import numpy as np
import pytest

from repro.smpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    Observer,
    RankFailedError,
    Runtime,
)


class TestBasics:
    def test_single_rank(self):
        assert Runtime(1, lambda c: c.rank * 10).run() == [0]

    def test_return_values_by_rank(self):
        assert Runtime(4, lambda c: c.rank ** 2).run() == [0, 1, 4, 9]

    def test_rank_and_size(self):
        def main(c):
            assert c.Get_rank() == c.rank
            assert c.Get_size() == 3
            return c.size
        assert Runtime(3, main).run() == [3, 3, 3]

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            Runtime(0, lambda c: None)

    def test_mpmd_rank_functions(self):
        fns = [lambda c: "a", lambda c: "b"]
        assert Runtime(2, fns).run() == ["a", "b"]

    def test_mpmd_wrong_count(self):
        with pytest.raises(ValueError):
            Runtime(3, [lambda c: None])


class TestFailureHandling:
    def test_rank_exception_propagates(self):
        def main(c):
            if c.rank == 1:
                raise RuntimeError("boom on 1")
            c.recv(1 - c.rank) if c.size > 1 else None
        with pytest.raises(RankFailedError, match="rank 1"):
            Runtime(2, main).run()

    def test_deadlock_detected_and_described(self):
        def main(c):
            c.recv((c.rank + 1) % c.size, tag=5)
        with pytest.raises(DeadlockError, match="tag=5"):
            Runtime(3, main).run()

    def test_threads_cleaned_up_after_deadlock(self):
        import threading
        before = threading.active_count()
        def main(c):
            c.recv(1 - c.rank)
        for _ in range(3):
            with pytest.raises(DeadlockError):
                Runtime(2, main).run()
        assert threading.active_count() <= before + 1


class TestDeterminism:
    def test_message_log_is_reproducible(self):
        def run_once():
            log = []
            def main(c):
                if c.rank == 0:
                    for k in range(5):
                        got = c.recv(ANY_SOURCE, ANY_TAG)
                        log.append(got)
                else:
                    c.send(f"m{c.rank}", 0, tag=c.rank)
                    if c.rank == 1:
                        c.send("extra", 0, tag=9)
                    if c.rank == 2:
                        c.send("extra2", 0, tag=9)
            Runtime(4, main).run()
            return tuple(log)
        runs = {run_once() for _ in range(5)}
        assert len(runs) == 1

    def test_virtual_clock_advances(self):
        seen = {}
        class Probe(Observer):
            def on_compute(self, rank, start, instr, loads, stores):
                seen.setdefault(rank, []).append((start, instr))
        def main(c):
            c.compute(100)
            c.compute(50)
        Runtime(2, main, observers=lambda r: Probe()).run()
        assert seen[0] == [(0, 100), (100, 50)]
        assert seen[1] == seen[0]


class TestComputeValidation:
    def test_negative_instructions_rejected(self):
        def main(c):
            c.compute(-5)
        with pytest.raises(RankFailedError, match="instructions"):
            Runtime(1, main).run()

    def test_zero_instruction_burst_ok(self):
        Runtime(1, lambda c: c.compute(0)).run()


class TestObserverCallbacks:
    def test_full_callback_sequence(self):
        events = []
        class Rec(Observer):
            def on_start(self, rank, size): events.append(("start", rank))
            def on_compute(self, rank, s, n, l, st): events.append(("compute", n))
            def on_send(self, rank, buf, dest, tag, size, elements, ch, sub,
                        req, context=0):
                events.append(("send", dest, tag, req))
            def on_recv_post(self, rank, buf, src, tag, sz, el, ch, sub,
                             req, context=0):
                events.append(("post", req)); return "tok"
            def on_recv_complete(self, rank, token, src, tag, size, elements):
                events.append(("complete", token, src))
            def on_wait(self, rank, reqs): events.append(("wait", tuple(reqs)))
            def on_event(self, rank, name, value): events.append(("event", name))
            def on_finish(self, rank): events.append(("finish", rank))

        def main(c):
            if c.rank == 0:
                c.event("go")
                c.compute(10)
                c.send(np.zeros(2), 1, tag=1)
            else:
                req = c.irecv(0, tag=1)
                c.wait(req)

        obs = [Rec() if r == 0 else Observer() for r in range(2)]
        obs1 = Rec()
        obs[1] = obs1
        Runtime(2, main, observers=obs).run()
        kinds = [e[0] for e in events]
        assert kinds.count("start") == 2 and kinds.count("finish") == 2
        assert ("send", 1, 1, None) in events
        assert ("event", "go") in events
        # the receiver posted, waited, completed with token and source 0
        assert ("complete", "tok", 0) in events
        post_i = kinds.index("post")
        wait_i = kinds.index("wait")
        comp_i = kinds.index("complete")
        assert post_i < wait_i < comp_i

    def test_observer_count_validated(self):
        with pytest.raises(ValueError):
            Runtime(2, lambda c: None, observers=[Observer()])
