"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dimemas.machine import MachineConfig
from repro.tracer.tracefile import run_traced


def make_pipeline_app(elements=64, work=100_000, iterations=3,
                      prod=None, cons=None):
    """A minimal 1-D pipeline rank function with controllable patterns."""
    from repro.apps.patterns import consumption_batches, production_batches

    prod = prod or [(0.0, 0.2), (1.0, 1.0)]
    cons = cons or [(0.0, 0.0), (1.0, 0.5)]

    def app(comm):
        r, s = comm.rank, comm.size
        out = np.zeros(elements)
        inbox = np.zeros(elements)
        pb = production_batches(elements, prod)
        cb = consumption_batches(elements, cons)
        loads = []
        for it in range(iterations):
            comm.event("iteration", it)
            if r > 0:
                comm.Recv(inbox, r - 1, tag=0)
                loads = [(inbox, o, a) for o, a in cb]
            stores = [(out, o, a) for o, a in pb] if r < s - 1 else []
            comm.compute(work, loads=loads, stores=stores)
            loads = []
            if r < s - 1:
                comm.send(out, r + 1, tag=0)
        return r

    return app


@pytest.fixture
def pipeline_trace():
    """Original trace of a small 4-rank pipeline with access profiles."""
    return run_traced(make_pipeline_app(), 4, mips=1000.0).trace


@pytest.fixture
def machine():
    """A small deterministic platform for replay tests."""
    return MachineConfig(bandwidth_mbps=100.0, latency=10e-6, buses=4)


@pytest.fixture
def paper_machine():
    """The paper's baseline platform (unlimited buses)."""
    return MachineConfig.paper_testbed()
