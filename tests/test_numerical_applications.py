"""Numerically-real applications on the simulated runtime.

The strongest correctness evidence for a message-passing runtime is a
real algorithm whose distributed answer must equal the serial one.
These tests run actual numerics (heat equation, power iteration,
distributed statistics) over smpi and check them against NumPy/SciPy
references — and then push the same programs through the tracing and
replay pipeline.
"""

import numpy as np
import pytest

from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.smpi import Runtime
from repro.trace.validate import validate
from repro.tracer import run_traced

CFG = MachineConfig(bandwidth_mbps=100.0, latency=5e-6)


def heat_1d_serial(u0: np.ndarray, steps: int, alpha: float = 0.25) -> np.ndarray:
    u = u0.copy()
    for _ in range(steps):
        u[1:-1] = u[1:-1] + alpha * (u[2:] - 2 * u[1:-1] + u[:-2])
    return u


def make_heat_app(u0: np.ndarray, steps: int, alpha: float = 0.25):
    """Distributed explicit heat equation with one-cell halo exchange."""
    n = u0.shape[0]

    def main(comm):
        size, rank = comm.size, comm.rank
        lo, hi = rank * n // size, (rank + 1) * n // size
        # local array with one ghost cell on each side
        u = np.zeros(hi - lo + 2)
        u[1:-1] = u0[lo:hi]
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < size - 1 else None
        lbuf, rbuf = np.zeros(1), np.zeros(1)

        for _ in range(steps):
            reqs = []
            if left is not None:
                reqs.append(comm.Irecv(lbuf, left, tag=1))
            if right is not None:
                reqs.append(comm.Irecv(rbuf, right, tag=2))
            if left is not None:
                comm.send(u[1:2].copy(), left, tag=2)
            if right is not None:
                comm.send(u[-2:-1].copy(), right, tag=1)
            comm.waitall(reqs)
            if left is not None:
                u[0] = lbuf[0]
            if right is not None:
                u[-1] = rbuf[0]
            interior = slice(1, u.shape[0] - 1)
            new = u[interior] + alpha * (u[2:] - 2 * u[1:-1] + u[:-2])
            # physical boundary cells stay fixed (Dirichlet)
            if left is None:
                new[0] = u[1]
            if right is None:
                new[-1] = u[-2]
            u[interior] = new
            comm.compute(int(50 * (hi - lo)),
                         loads=[(lbuf, [0]), (rbuf, [0])])
        return u[1:-1].copy()

    return main


class TestHeatEquation:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5])
    def test_matches_serial_solution(self, nranks):
        rng = np.random.default_rng(11)
        u0 = rng.normal(size=60)
        steps = 25
        parts = Runtime(nranks, make_heat_app(u0, steps)).run()
        distributed = np.concatenate(parts)
        serial = heat_1d_serial(u0, steps)
        assert np.allclose(distributed, serial, atol=1e-12)

    def test_traced_heat_validates_and_replays(self):
        rng = np.random.default_rng(5)
        u0 = rng.normal(size=40)
        run = run_traced(make_heat_app(u0, 10), 4)
        validate(run.trace, strict=True)
        distributed = np.concatenate(run.results)
        assert np.allclose(distributed, heat_1d_serial(u0, 10), atol=1e-12)
        assert simulate(run.trace, CFG).duration > 0


class TestPowerIteration:
    def test_dominant_eigenvalue(self):
        """Distributed power iteration on a block-row matrix."""
        rng = np.random.default_rng(3)
        n = 32
        A = rng.normal(size=(n, n))
        A = A @ A.T + n * np.eye(n)  # SPD: dominant eigenvalue real

        def main(comm):
            size, rank = comm.size, comm.rank
            lo, hi = rank * n // size, (rank + 1) * n // size
            A_loc = A[lo:hi]
            v = np.ones(n) / np.sqrt(n)
            lam = 0.0
            for _ in range(300):
                w_loc = A_loc @ v
                parts = comm.allgather(w_loc)
                w = np.concatenate(parts)
                lam = comm.allreduce(float(v[lo:hi] @ w_loc))
                norm = np.sqrt(comm.allreduce(float(w_loc @ w_loc)))
                v = w / norm
                comm.compute(int(A_loc.size * 4))
            return lam

        out = Runtime(4, main).run()
        expect = float(np.linalg.eigvalsh(A).max())
        for lam in out:
            assert lam == pytest.approx(expect, rel=1e-6)


class TestDistributedStatistics:
    def test_mean_and_variance_via_reductions(self):
        rng = np.random.default_rng(7)
        data = rng.normal(loc=2.0, scale=3.0, size=1000)

        def main(comm):
            size, rank = comm.size, comm.rank
            lo, hi = rank * 1000 // size, (rank + 1) * 1000 // size
            x = data[lo:hi]
            n = comm.allreduce(len(x))
            s = comm.allreduce(float(x.sum()))
            mean = s / n
            ss = comm.allreduce(float(((x - mean) ** 2).sum()))
            return (mean, ss / n)

        out = Runtime(5, main).run()
        for mean, var in out:
            assert mean == pytest.approx(data.mean(), rel=1e-12)
            assert var == pytest.approx(data.var(), rel=1e-12)
