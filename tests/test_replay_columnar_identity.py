"""Columnar vs object replay path: bitwise-identical results.

The parallel engine replays traces that round-tripped through the
binary codec (parent encodes, worker decodes); the correctness claim of
the whole zero-copy dispatch is that this changes *nothing* — not one
ulp of one duration, not the order of one message.  This suite pins
that claim for every application skeleton in the pool.
"""

import pytest

from repro.apps import APPS, get_app
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.experiments.pipeline import AppExperiment
from repro.trace.columnar import decode, from_traceset

SMALL = 8  # ranks: enough for real communication structure, fast to run


def assert_results_identical(a, b):
    assert a.duration == b.duration
    assert a.rank_end == b.rank_end
    assert a.states == b.states
    assert a.messages == b.messages
    assert a.events == b.events
    assert (
        a.network_stats["events_executed"] == b.network_stats["events_executed"]
    )


@pytest.mark.parametrize("name", sorted(APPS))
class TestPoolAppIdentity:
    def test_codec_round_trip_replays_identically(self, name):
        ts = get_app(name).trace(nranks=SMALL).trace
        cfg = MachineConfig.paper_testbed(name)
        direct = simulate(ts, cfg)
        shipped = simulate(decode(from_traceset(ts).encode()), cfg)
        assert_results_identical(direct, shipped)


@pytest.mark.parametrize("variant", ["original", "real", "ideal"])
class TestTransformedTraceIdentity:
    def test_variant_round_trip(self, variant):
        exp = AppExperiment(
            "cg", nranks=4, app_params=dict(n=2000, iterations=1),
        )
        ts = exp.trace(variant)
        cfg = exp.platform(bandwidth_mbps=125.0)
        direct = simulate(ts, cfg)
        shipped = simulate(decode(from_traceset(ts).encode()), cfg)
        assert_results_identical(direct, shipped)
