"""The simulation integrity layer: auditor, certification, hardening.

Companion of ``tests/test_audit_property.py`` (the hypothesis side)
and ``tests/fuzz/`` (the mutational side): these are the deterministic
unit tests for ``repro.audit`` and its wiring into the replay engine,
the experiment engine (``--verify-sample``), the caches (quarantine
retention), the parsers (resource caps, quarantine-load mode), and the
``repro-verify`` / ``--audit`` CLI surface.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro.audit import (
    AuditConfig,
    IntegrityError,
    InvariantAuditor,
    certify_trace,
    divergence,
    ingest_limits,
    resolve_level,
    result_digest,
)
from repro.cli import EXIT_INTEGRITY, main_simulate, main_verify
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.dimemas.results import SimResult
from repro.experiments.cache import SimResultCache, sweep_cache_dir
from repro.experiments.parallel import ExperimentEngine, GridPoint
from repro.trace import dim
from repro.trace.columnar import ColumnarFormatError, columnar_of, decode
from repro.trace.dim import TraceFormatError


# --------------------------------------------------------------------------- #
# Levels and configuration.
# --------------------------------------------------------------------------- #

class TestLevels:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert resolve_level(None) == "off"

    def test_env_resolves(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "full")
        assert resolve_level(None) == "full"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "full")
        assert resolve_level("basic") == "basic"

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown audit level"):
            resolve_level("paranoid")

    def test_coerce(self):
        assert AuditConfig.coerce(None) is None
        assert AuditConfig.coerce("off") is None
        assert AuditConfig.coerce(AuditConfig(level="off")) is None
        cfg = AuditConfig.coerce("full")
        assert cfg is not None and cfg.level == "full"
        same = AuditConfig(level="basic", strict=True)
        assert AuditConfig.coerce(same) is same


# --------------------------------------------------------------------------- #
# Audited replays of a correct engine are clean.
# --------------------------------------------------------------------------- #

class TestAuditedReplay:
    def test_basic_clean(self, pipeline_trace, machine):
        cfg = AuditConfig(level="basic")
        simulate(pipeline_trace, machine, audit=cfg)
        report = cfg.report
        assert report is not None and report.ok
        assert report.nranks == 4
        assert len(report.checks) == 6
        assert "duration.burst" not in report.checks
        assert "clean" in report.render()

    def test_full_adds_plan_check(self, pipeline_trace, machine):
        cfg = AuditConfig(level="full")
        simulate(pipeline_trace, machine, audit=cfg)
        assert cfg.report.ok
        assert len(cfg.report.checks) == 7
        assert "duration.burst" in cfg.report.checks

    def test_audit_accepts_level_string(self, pipeline_trace, machine):
        r0 = simulate(pipeline_trace, machine)
        r1 = simulate(pipeline_trace, machine, audit="full")
        # Auditing must never perturb the simulation itself.
        assert result_digest(r0) == result_digest(r1)

    def test_report_to_dict_round_trip(self, pipeline_trace, machine):
        cfg = AuditConfig(level="full")
        simulate(pipeline_trace, machine, audit=cfg)
        doc = cfg.report.to_dict()
        assert doc["ok"] is True and doc["level"] == "full"
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_strict_raises_on_violation(self, pipeline_trace, machine,
                                        monkeypatch):
        def bad_quiescence(self, sim):
            self._checks.append("quiescence")
            self._add("quiescence", "synthetic leftover transfer", (2,))

        monkeypatch.setattr(InvariantAuditor, "_check_quiescence",
                            bad_quiescence)
        cfg = AuditConfig(level="basic", strict=True)
        with pytest.raises(IntegrityError, match="quiescence") as exc_info:
            simulate(pipeline_trace, machine, audit=cfg)
        report = exc_info.value.report
        assert not report.ok
        assert report.for_rank(2) and not report.for_rank(0)

    def test_non_strict_reports_without_raising(self, pipeline_trace,
                                                machine, monkeypatch):
        def bad_quiescence(self, sim):
            self._checks.append("quiescence")
            self._add("quiescence", "synthetic leftover transfer", (2,))

        monkeypatch.setattr(InvariantAuditor, "_check_quiescence",
                            bad_quiescence)
        cfg = AuditConfig(level="basic", strict=False)
        simulate(pipeline_trace, machine, audit=cfg)
        assert not cfg.report.ok

    def test_clock_check_catches_tampered_timeline(self, pipeline_trace,
                                                   machine):
        result = simulate(pipeline_trace, machine)
        aud = InvariantAuditor(AuditConfig(level="basic"))
        aud._check_clocks(result)
        assert not aud.violations  # ground truth is clean
        # Make rank 1's second interval start before its first ends.
        label, t0, t1 = result.states[1][1]
        result.states[1][1] = (label, -0.5 * result.states[1][0][2], t1)
        aud = InvariantAuditor(AuditConfig(level="basic"))
        aud._check_clocks(result)
        assert any(v.code == "clock.monotonicity" and v.ranks == (1,)
                   for v in aud.violations)


# --------------------------------------------------------------------------- #
# Determinism certification primitives.
# --------------------------------------------------------------------------- #

class TestCertify:
    def test_result_digest_deterministic(self, pipeline_trace, machine):
        a = simulate(pipeline_trace, machine)
        b = simulate(pipeline_trace, machine)
        assert result_digest(a) == result_digest(b)
        assert len(result_digest(a)) == 24

    def test_result_digest_sensitive_to_platform(self, pipeline_trace,
                                                 machine):
        a = simulate(pipeline_trace, machine)
        slower = MachineConfig(bandwidth_mbps=machine.bandwidth_mbps / 2,
                               latency=machine.latency, buses=machine.buses)
        b = simulate(pipeline_trace, slower)
        assert result_digest(a) != result_digest(b)

    def test_divergence_clean_against_itself(self, pipeline_trace, machine):
        a = simulate(pipeline_trace, machine)
        b = simulate(pipeline_trace, machine)
        assert divergence(a, b) == []

    def test_divergence_attributes_ranks(self, pipeline_trace, machine):
        a = simulate(pipeline_trace, machine)
        b = simulate(pipeline_trace, machine)
        b.rank_end[3] += 1e-3
        found = divergence(a, b)
        assert found and all(v.code == "determinism.divergence"
                             for v in found)
        assert any(v.ranks == (3,) for v in found)

    def test_certify_trace_clean_with_double_replay(self, pipeline_trace,
                                                    machine):
        report = certify_trace(pipeline_trace, machine=machine,
                               level="full", double_replay=True)
        assert report.ok
        assert "determinism.double_replay" in report.checks
        assert "validate.structure" in report.checks
        assert report.trace_digest


# --------------------------------------------------------------------------- #
# Hardened ingestion: caps and the quarantine load mode.
# --------------------------------------------------------------------------- #

class TestIngestion:
    def test_limits_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_TRACE_MB", "1")
        monkeypatch.setenv("REPRO_MAX_RANKS", "0")        # 0 disables
        monkeypatch.setenv("REPRO_MAX_RECORDS", "junk")   # unparseable
        limits = ingest_limits()
        assert limits.max_trace_bytes == 1024 * 1024
        assert limits.max_ranks == float("inf")
        assert limits.max_records == 20_000_000  # unparseable -> default

    def test_trace_byte_cap(self, pipeline_trace, monkeypatch):
        text = dim.dumps(pipeline_trace)
        monkeypatch.setenv("REPRO_MAX_TRACE_MB",
                           str(max(1, len(text) // (1024 * 1024)) / 1024))
        with pytest.raises(TraceFormatError, match="REPRO_MAX_TRACE_MB"):
            dim.loads(text)

    def test_rank_cap(self, pipeline_trace, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RANKS", "2")
        with pytest.raises(TraceFormatError, match="REPRO_MAX_RANKS"):
            dim.loads(dim.dumps(pipeline_trace))

    def test_record_cap(self, pipeline_trace, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RECORDS", "5")
        with pytest.raises(TraceFormatError, match="REPRO_MAX_RECORDS"):
            dim.loads(dim.dumps(pipeline_trace))

    def test_line_length_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_LINE_LEN", "24")
        with pytest.raises(TraceFormatError, match="REPRO_MAX_LINE_LEN"):
            dim.loads("#DIMEMAS-REPRO:1\nP:0\nB:" + "9" * 50 + ":-\n")

    def test_columnar_caps(self, pipeline_trace, monkeypatch):
        blob = columnar_of(pipeline_trace).encode()
        monkeypatch.setenv("REPRO_MAX_RANKS", "2")
        with pytest.raises(ColumnarFormatError, match="REPRO_MAX_RANKS"):
            decode(blob)
        monkeypatch.delenv("REPRO_MAX_RANKS")
        monkeypatch.setenv("REPRO_MAX_RECORDS", "3")
        with pytest.raises(ColumnarFormatError, match="REPRO_MAX_RECORDS"):
            decode(blob)
        monkeypatch.delenv("REPRO_MAX_RECORDS")
        restored = decode(blob).to_traceset()
        assert restored.total_records() == pipeline_trace.total_records()

    def test_quarantine_mode_attributes_dropped_records(self,
                                                        pipeline_trace):
        lines = dim.dumps(pipeline_trace).splitlines()
        target = next(i for i, ln in enumerate(lines)
                      if ln.startswith("S:"))
        lines[target] = "S:not:a:number"
        text = "\n".join(lines) + "\n"
        with pytest.raises(TraceFormatError):
            dim.loads(text)  # raise mode: typed, line-attributed
        trace = dim.loads(text, errors="quarantine")
        dropped = trace.meta["quarantined_records"]
        # The broken send goes, and so does the orphaned access
        # profile that followed it (it must not attach to the record
        # *before* the dropped one).
        assert [d["kind"] for d in dropped] == ["S", "AP"]
        entry = dropped[0]
        assert entry["line"] == target + 1
        assert isinstance(entry["rank"], int)
        assert "not" in entry["text"] and "malformed" in entry["reason"]

    def test_unknown_errors_mode_rejected(self):
        with pytest.raises(ValueError, match="errors"):
            dim.loads("#DIMEMAS-REPRO:1\nP:0\n", errors="ignore")

    def test_inconsistent_process_table_is_typed(self):
        # Regression: the fuzzer got a bare ValueError out of TraceSet
        # when mutated 'P' headers skipped a rank.
        with pytest.raises(TraceFormatError, match="process table"):
            dim.loads("#DIMEMAS-REPRO:1\nP:0\nP:2\n")


# --------------------------------------------------------------------------- #
# Satellite: SimResult accessor guards.
# --------------------------------------------------------------------------- #

class TestResultGuards:
    def _empty(self) -> SimResult:
        return SimResult(nranks=4, duration=0.0, rank_end=[],
                         states=[], messages=[], events=[])

    def test_time_in_state_out_of_range_rank(self, pipeline_trace, machine):
        res = simulate(pipeline_trace, machine)
        assert res.time_in_state("Running", rank=99) == 0.0
        assert res.time_in_state("Running", rank=-7) == 0.0

    def test_time_in_state_short_states_list(self):
        res = self._empty()
        assert res.time_in_state("Running") == 0.0
        assert res.time_in_state("Running", rank=0) == 0.0

    def test_event_times_out_of_range_rank(self):
        assert self._empty().event_times("iteration", rank=0) == []
        assert self._empty().event_times("iteration", rank=-3) == []

    def test_parallel_efficiency_zero_time(self):
        assert self._empty().parallel_efficiency == 0.0


# --------------------------------------------------------------------------- #
# Satellite: quarantine retention in the caches.
# --------------------------------------------------------------------------- #

class TestQuarantineRetention:
    def _fill(self, qdir: Path, count: int, age_days: float = 0.0) -> None:
        qdir.mkdir(parents=True, exist_ok=True)
        stamp = time.time() - age_days * 86400.0
        for i in range(count):
            p = qdir / f"entry-{age_days:g}d-{i}.json.corrupt-x"
            p.write_text("{}")
            os.utime(p, (stamp + i, stamp + i))

    def test_count_bound(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "3")
        qdir = tmp_path / "replays" / "quarantine"
        self._fill(qdir, 8)
        sweep_cache_dir(tmp_path)
        assert len(list(qdir.iterdir())) == 3

    def test_age_bound(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_MAX_AGE_DAYS", "7")
        qdir = tmp_path / "traces" / "quarantine"
        self._fill(qdir, 2, age_days=30.0)
        self._fill(qdir, 2, age_days=0.0)
        sweep_cache_dir(tmp_path)
        survivors = sorted(p.name for p in qdir.iterdir())
        assert len(survivors) == 2
        assert all("-0d-" in name for name in survivors)

    def test_zero_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "0")
        monkeypatch.setenv("REPRO_QUARANTINE_MAX_AGE_DAYS", "0")
        qdir = tmp_path / "replays" / "quarantine"
        self._fill(qdir, 5, age_days=400.0)
        sweep_cache_dir(tmp_path)
        assert len(list(qdir.iterdir())) == 5

    def test_quarantine_entry_moves_result_and_sidecar(self, tmp_path,
                                                       pipeline_trace,
                                                       machine):
        cache = SimResultCache(tmp_path / "replays")
        key = cache.key(pipeline_trace, machine)
        cache.store(key, simulate(pipeline_trace, machine))
        assert cache.path_for(key).exists()
        assert cache.quarantine_entry(key, "unit test distrust")
        assert not cache.path_for(key).exists()
        qdir = tmp_path / "replays" / "quarantine"
        assert any(key in p.name for p in qdir.iterdir())
        # A second call finds nothing left to distrust.
        assert not cache.quarantine_entry(key, "again")


# --------------------------------------------------------------------------- #
# --verify-sample: corrupted cached results are caught and healed.
# --------------------------------------------------------------------------- #

class TestVerifySample:
    def _corrupt_cached_result(self, cache: SimResultCache,
                               key: str) -> None:
        """Falsify a cached SimResult *with a valid checksum*, so only
        a digest-against-re-replay comparison can catch it."""
        path = cache.path_for(key)
        envelope = json.loads(path.read_text())
        result = envelope["result"]
        result["duration"] = result["duration"] * 3.0 + 1.0
        result["rank_end"] = [t * 3.0 + 1.0 for t in result["rank_end"]]
        envelope["sha256"] = hashlib.sha256(
            cache._canonical(result).encode()
        ).hexdigest()
        path.write_text(json.dumps(envelope, separators=(",", ":")))
        dur = cache._dur_path(key)
        if dur.exists():
            dur.unlink()  # force the duration read through the envelope

    def test_detects_quarantines_and_heals(self, tmp_path):
        point = GridPoint(app="cg", variant="original", nranks=4)
        with ExperimentEngine(cache_dir=tmp_path) as engine:
            truth = engine.durations([point])[0]

        cache = SimResultCache(tmp_path / "replays")
        keys = [p.stem for p in (tmp_path / "replays").glob("*.json")]
        assert len(keys) == 1
        self._corrupt_cached_result(cache, keys[0])

        with ExperimentEngine(cache_dir=tmp_path,
                              verify_sample=1.0) as engine:
            healed = engine.durations([point])[0]
            assert healed == truth
            assert len(engine.verify_mismatches) == 1
            record = engine.verify_mismatches[0]
            assert record["app"] == "cg"
            assert record["expected"] != record["actual"]
        qdir = tmp_path / "replays" / "quarantine"
        assert qdir.exists() and any(qdir.iterdir())

        # The healed entry now verifies clean.
        with ExperimentEngine(cache_dir=tmp_path,
                              verify_sample=1.0) as engine:
            assert engine.durations([point])[0] == truth
            assert engine.verify_mismatches == []

    def test_sampling_is_deterministic(self):
        engine = ExperimentEngine(verify_sample=0.5)
        points = [GridPoint(app="cg", nranks=4,
                            bandwidth_mbps=float(b)) for b in range(40)]
        first = [engine._verify_sampled(p) for p in points]
        second = [engine._verify_sampled(p) for p in points]
        engine.close()
        assert first == second
        assert 0 < sum(first) < len(points)

    def test_rate_clamped_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_SAMPLE", "0.25")
        engine = ExperimentEngine()
        assert engine.verify_sample == 0.25
        engine.close()
        engine = ExperimentEngine(verify_sample=7.0)
        assert engine.verify_sample == 1.0
        engine.close()


# --------------------------------------------------------------------------- #
# CLI surface: repro-verify and --audit.
# --------------------------------------------------------------------------- #

class TestVerifyCli:
    def test_verify_passes_clean_dim_and_rct(self, tmp_path,
                                             pipeline_trace, capsys):
        dimf = tmp_path / "ok.dim"
        dim.dump(pipeline_trace, str(dimf))
        rctf = tmp_path / "ok.rct"
        rctf.write_bytes(columnar_of(pipeline_trace).encode())
        assert main_verify([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 2 and "2 passed, 0 failed" in out

    def test_verify_fails_broken_trace(self, tmp_path, pipeline_trace,
                                       capsys):
        text = dim.dumps(pipeline_trace)
        lines = text.splitlines()
        target = next(i for i, ln in enumerate(lines)
                      if ln.startswith("S:"))
        parts = lines[target].split(":")
        parts[3] = str(int(parts[3]) + 12345)  # torn size header
        lines[target] = ":".join(parts)
        bad = tmp_path / "bad.dim"
        bad.write_text("\n".join(lines) + "\n")
        assert main_verify([str(bad)]) == EXIT_INTEGRITY
        out = capsys.readouterr().out
        assert "FAIL" in out and "violation" in out

    def test_verify_unreadable_is_a_failure(self, tmp_path, capsys):
        junk = tmp_path / "junk.rct"
        junk.write_bytes(b"not a columnar trace")
        assert main_verify([str(junk)]) == EXIT_INTEGRITY
        assert "unreadable" in capsys.readouterr().out

    def test_simulate_audit_strict_clean(self, tmp_path, pipeline_trace):
        dimf = tmp_path / "t.dim"
        dim.dump(pipeline_trace, str(dimf))
        assert main_simulate([str(dimf), "--audit", "full",
                              "--strict-audit"]) == 0
