"""Observability layer: spans, metrics, manifests, exporters, CLI."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.obs import metrics as metrics_mod
from repro.obs import spans as spans_mod
from repro.obs.export import span_summary_table, spans_to_chrome
from repro.obs.manifest import (
    RunContext,
    collect_worker_payload,
    configure_worker,
    current_run,
    new_run_id,
    worker_config,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Span collection off and drained before and after every test."""
    spans_mod.disable()
    spans_mod.flush()
    yield
    spans_mod.disable()
    spans_mod.flush()


# --------------------------------------------------------------------------- #
# Spans.
# --------------------------------------------------------------------------- #

class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        assert obs.span("a") is obs.span("b") is spans_mod.NULL_SPAN
        with obs.span("a") as sp:
            sp.annotate(x=1)  # no-op, must not raise
        assert spans_mod.flush() == []

    def test_records_interval_and_attrs(self):
        obs.enable()
        with obs.span("stage.one", nranks=4) as sp:
            sp.annotate(events=7)
        (rec,) = spans_mod.flush()
        assert rec.name == "stage.one"
        assert rec.t1 >= rec.t0
        assert rec.attrs == {"nranks": 4, "events": 7}
        assert rec.parent is None

    def test_nesting_links_parent_ids(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        recs = {r.name: r for r in spans_mod.flush()}
        assert recs["inner"].parent == outer.sid
        assert recs["outer"].parent is None
        # Children finish first: the records list is exit-ordered.
        assert recs["inner"].sid != recs["outer"].sid

    def test_sibling_spans_share_parent(self):
        obs.enable()
        with obs.span("root") as root:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        recs = {r.name: r for r in spans_mod.flush()}
        assert recs["a"].parent == root.sid
        assert recs["b"].parent == root.sid

    def test_exception_annotates_and_propagates(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
        (rec,) = spans_mod.flush()
        assert rec.attrs["error"] == "ValueError"

    def test_traced_decorator(self):
        calls = []

        @obs.traced("fn.label")
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2  # disabled: no span, function still runs
        assert spans_mod.flush() == []
        obs.enable()
        assert fn(2) == 3
        (rec,) = spans_mod.flush()
        assert rec.name == "fn.label"
        assert calls == [1, 2]

    def test_to_dict_is_wall_clock(self):
        obs.enable()
        with obs.span("x"):
            pass
        (rec,) = spans_mod.flush()
        d = rec.to_dict()
        # Wall-clock epoch seconds, not raw perf_counter values.
        assert d["t0"] > 1e9
        assert d["t1"] >= d["t0"]


# --------------------------------------------------------------------------- #
# Metrics.
# --------------------------------------------------------------------------- #

class TestHistogram:
    def test_nearest_rank_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0

    def test_small_sets_and_empty(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert math.isnan(h.percentile(50))
        h.observe(3.0)
        assert h.percentile(50) == 3.0
        h.observe(1.0)
        assert h.percentile(50) == 1.0  # nearest rank: ceil(0.5*2)=1st
        assert h.percentile(99) == 3.0

    def test_summary_fields(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["min"] == 2.0 and s["max"] == 6.0
        assert s["mean"] == pytest.approx(4.0)
        assert reg.histogram("empty").summary() == {"count": 0}

    def test_percentile_range_checked(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestFunnel:
    def test_flush_delta_then_merge_equals_direct(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.counter("c").inc(5)
        worker.gauge("g").set(2.5)
        worker.histogram("h").observe(1.0)
        worker.histogram("h").observe(9.0)
        parent.merge_delta(worker.flush_delta())
        assert parent.counter("c").value == 5
        assert parent.gauge("g").value == 2.5
        assert parent.histogram("h").values == [1.0, 9.0]

    def test_second_flush_only_ships_new_activity(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(3)
        worker.histogram("h").observe(1.0)
        worker.flush_delta()
        empty = worker.flush_delta()
        assert empty == {"counters": {}, "gauges": {}, "histograms": {}}
        worker.counter("c").inc(2)
        worker.histogram("h").observe(7.0)
        delta = worker.flush_delta()
        assert delta["counters"] == {"c": 2}
        assert delta["histograms"] == {"h": [7.0]}
        # Totals in the worker itself are unaffected by flushing.
        assert worker.counter("c").value == 5

    def test_merge_is_order_independent(self):
        deltas = []
        for incs in ((1, [1.0, 2.0]), (4, [3.0]), (2, [])):
            w = MetricsRegistry()
            w.counter("c").inc(incs[0])
            for v in incs[1]:
                w.histogram("h").observe(v)
            deltas.append(w.flush_delta())
        a, b = MetricsRegistry(), MetricsRegistry()
        for d in deltas:
            a.merge_delta(d)
        for d in reversed(deltas):
            b.merge_delta(d)
        assert a.counter("c").value == b.counter("c").value == 7
        assert sorted(a.histogram("h").values) == sorted(b.histogram("h").values)
        assert a.histogram("h").percentile(50) == b.histogram("h").percentile(50)

    def test_merge_none_and_empty_are_noops(self):
        reg = MetricsRegistry()
        reg.merge_delta(None)
        reg.merge_delta({})
        assert reg.snapshot()["counters"] == {}

    def test_worker_payload_roundtrip(self):
        """collect_worker_payload -> absorb via a parent registry."""
        obs.enable()
        with obs.span("worker.stage"):
            pass
        obs.get_registry().counter("test.obs.payload").inc(2)
        payload = collect_worker_payload(events=[{"what": "x"}])
        assert payload["pid"] > 0
        assert payload["metrics"]["counters"]["test.obs.payload"] == 2
        assert [s["name"] for s in payload["spans"]] == ["worker.stage"]
        assert payload["events"] == [{"what": "x"}]

    def test_worker_config_controls_spans(self):
        configure_worker({"spans": True})
        assert obs.is_enabled()
        configure_worker(None)
        assert not obs.is_enabled()
        assert worker_config() == {"spans": False}


# --------------------------------------------------------------------------- #
# Run manifests.
# --------------------------------------------------------------------------- #

class TestRunContext:
    def test_manifest_and_event_log(self, tmp_path):
        run = RunContext(tmp_path, command="test-cmd", argv=["x"], seed=7)
        assert current_run() is run
        run.record("custom", detail=1)
        manifest = run.finalize(status="ok", extra_field=3)
        assert current_run() is None
        on_disk = json.loads((run.dir / "manifest.json").read_text())
        for doc in (manifest, on_disk):
            assert doc["run_id"] == run.run_id
            assert doc["command"] == "test-cmd"
            assert doc["seed"] == 7
            assert doc["status"] == "ok"
            assert doc["extra_field"] == 3
            assert doc["wall_seconds"] >= 0
            assert "metrics" in doc
        kinds = [json.loads(l)["kind"]
                 for l in (run.dir / "events.jsonl").read_text().splitlines()]
        assert kinds == ["run_start", "custom", "run_end"]

    def test_absorb_worker_merges_everything(self, tmp_path):
        before = obs.get_registry().counter("test.obs.absorb").value
        run = RunContext(tmp_path, command="t")
        run.absorb_worker({
            "pid": 4242,
            "metrics": {"counters": {"test.obs.absorb": 3}, "gauges": {},
                        "histograms": {}},
            "spans": [{"name": "w.stage", "t0": 1.0, "t1": 2.0,
                       "parent": None, "sid": 1, "tid": 1, "attrs": {}}],
            "events": [{"kind2": "cache_hit"}],
        })
        run.absorb_worker(None)  # tolerated
        manifest = run.finalize()
        assert obs.get_registry().counter("test.obs.absorb").value == before + 3
        assert manifest["worker_pids"] == [4242]
        assert manifest["worker_events"] == 1
        assert any(s["name"] == "w.stage" and s["pid"] == 4242
                   for s in run.spans)

    def test_local_spans_get_this_pid(self, tmp_path):
        import os
        obs.enable()
        run = RunContext(tmp_path, command="t")
        with obs.span("local.stage"):
            pass
        spans = run.drain_spans()
        assert any(s["name"] == "local.stage" and s["pid"] == os.getpid()
                   for s in spans)
        run.finalize()

    def test_run_ids_unique_and_sortable(self):
        a, b = new_run_id(), new_run_id()
        assert a != b
        assert len(a.split("-")) == 3


# --------------------------------------------------------------------------- #
# Exporters.
# --------------------------------------------------------------------------- #

def _spandict(name, t0, t1, pid=100, attrs=None, sid=1, parent=None):
    return {"name": name, "t0": t0, "t1": t1, "parent": parent, "sid": sid,
            "tid": 1, "attrs": attrs or {}, "pid": pid}


class TestChromeExport:
    def test_empty(self):
        assert spans_to_chrome([]) == {"traceEvents": [],
                                       "displayTimeUnit": "ms"}

    def test_events_shape(self):
        doc = spans_to_chrome([
            _spandict("replay.simulate", 10.0, 10.5),
            _spandict("trace.build", 10.5, 10.6, pid=200, sid=2),
        ])
        ev = doc["traceEvents"]
        xs = [e for e in ev if e["ph"] == "X"]
        ms = [e for e in ev if e["ph"] == "M"]
        assert len(xs) == 2 and ms  # metadata + complete events
        sim = next(e for e in xs if e["name"] == "replay.simulate")
        assert sim["ts"] == 0.0 and sim["dur"] == pytest.approx(0.5e6)
        assert sim["cat"] == "replay"
        assert {e["pid"] for e in xs} == {100, 200}
        # Metadata events sort before timed events (Perfetto wants this).
        assert [e["ph"] for e in ev[:len(ms)]] == ["M"] * len(ms)

    def test_sim_overlay_track(self):
        doc = spans_to_chrome([
            _spandict("replay.simulate", 10.0, 10.5,
                      attrs={"sim_seconds": 2.0}),
        ])
        sims = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "simulated"]
        assert len(sims) == 1
        assert sims[0]["dur"] == pytest.approx(2.0e6)
        assert sims[0]["name"] == "replay.simulate [simulated]"
        plain = spans_to_chrome(
            [_spandict("replay.simulate", 10.0, 10.5,
                       attrs={"sim_seconds": 2.0})],
            sim_overlay=False,
        )["traceEvents"]
        assert not any(e.get("cat") == "simulated" for e in plain)
        assert not any(e.get("tid") == 999_999 for e in plain)

    def test_accepts_span_record_objects(self):
        obs.enable()
        with obs.span("mix.native"):
            pass
        (rec,) = spans_mod.flush()
        doc = spans_to_chrome([rec, _spandict("mix.dict", rec.t0, rec.t1)])
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert names == {"mix.native", "mix.dict"}

    def test_json_serializable(self, tmp_path):
        obs.enable()
        with obs.span("ser.stage", nranks=4):
            pass
        path = obs.write_chrome_trace(
            tmp_path / "trace.json", [r.to_dict() for r in spans_mod.flush()]
        )
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]


class TestTextSummaries:
    def test_span_summary_table(self):
        table = span_summary_table([
            _spandict("replay.simulate", 0.0, 2.0),
            _spandict("replay.simulate", 2.0, 3.0),
            _spandict("trace.build", 0.0, 0.5),
        ])
        assert "replay.simulate" in table and "trace.build" in table
        lines = table.splitlines()
        # Sorted by total time: replay.simulate (3 s) before trace.build.
        assert lines[1].startswith("replay.simulate")
        assert "2" in lines[1].split()[1]  # two calls
        assert span_summary_table([]) == "(no spans recorded)"

    def test_metrics_table(self):
        reg = MetricsRegistry()
        reg.counter("cache.trace.hits").inc(4)
        reg.histogram("replay.wall_seconds").observe(0.25)
        text = obs.metrics_table(reg)
        assert "cache.trace.hits" in text and "4" in text
        assert "replay.wall_seconds" in text

    def test_write_metrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = obs.write_metrics(tmp_path / "m.json", reg, run_id="rid")
        doc = json.loads(path.read_text())
        assert doc["run_id"] == "rid"
        assert doc["metrics"]["counters"]["c"] == 1


# --------------------------------------------------------------------------- #
# End to end: the report CLI with workers, profiling, and artifacts.
# --------------------------------------------------------------------------- #

class TestCliAcceptance:
    def test_report_run_produces_all_artifacts(self, tmp_path, capsys):
        from repro.cli import main_report

        obs_dir = tmp_path / "obs"
        rc = main_report([
            "--jobs", "2", "--nranks", "4", "--apps", "cg",
            "--no-bandwidth", "--profile",
            "--metrics-out", str(tmp_path / "m.json"),
            "--obs-dir", str(obs_dir),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        report = capsys.readouterr().out
        assert "== Figure 6: overlap benefits ==" in report
        assert "cache:" in report and "hits" in report

        (run_dir,) = [p for p in obs_dir.iterdir() if p.is_dir()]
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "ok"
        assert manifest["command"] == "repro-report"
        assert manifest["spans"] > 0
        # The pool ran: worker processes funneled their observability
        # payloads (metrics deltas + spans) back through task results.
        assert manifest["worker_pids"]

        metrics = json.loads((tmp_path / "m.json").read_text())
        assert metrics["run_id"] == manifest["run_id"]
        counters = metrics["metrics"]["counters"]
        assert counters["cache.replay.misses"] > 0
        assert counters["replay.runs"] > 0
        hists = metrics["metrics"]["histograms"]
        assert hists["engine.point_wall_seconds"]["count"] > 0
        assert hists["replay.wall_seconds"]["count"] > 0

        trace = json.loads((run_dir / "trace.json").read_text())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs
        # Worker spans made it into the merged Perfetto trace: more
        # than one process track.
        assert len({e["pid"] for e in xs}) >= 2
        assert any(e["cat"] == "simulated" for e in xs)

        kinds = [json.loads(l)["kind"] for l in
                 (run_dir / "events.jsonl").read_text().splitlines()]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        # Spans are off again after the CLI run.
        assert not obs.is_enabled()

    def test_cache_counters_aggregate_without_run_dir(self, tmp_path):
        """Satellite: worker cache hits/misses survive the pool even
        when no observability flags are given."""
        from repro.experiments.parallel import ExperimentEngine, expand_grid

        reg = obs.get_registry()
        before = reg.counter("cache.replay.misses").value
        points = expand_grid(["cg"], variants=("original", "real"), nranks=4)
        with ExperimentEngine(jobs=2, cache_dir=tmp_path / "cache") as eng:
            durs = eng.durations(points)
        assert all(d > 0 for d in durs)
        assert reg.counter("cache.replay.misses").value > before
