"""Chaos harness: a tiny killable/resumable campaign driver.

Run as a subprocess by ``tests/test_chaos.py`` (and by hand when
debugging crash-recovery)::

    python tests/chaos.py --obs-dir OBS --cache-dir CACHE --out TABLE \
        [--resume RUN_ID] [--jobs N] [--metrics-json FILE]

The driver runs a small deterministic Sweep3D grid through an
:class:`~repro.experiments.parallel.ExperimentEngine` with a
:class:`~repro.experiments.checkpoint.CheckpointJournal` attached and
writes the campaign's final table (one formatted row per grid point)
to ``--out``.  The harness SIGKILLs it at chosen or randomized
instants — via the ``REPRO_TEST_SELFKILL_*`` hooks or an external
``killpg`` — then re-invokes it with ``--resume`` and asserts the
final table is bitwise-identical to an uninterrupted run's, with zero
re-execution of journaled points.

Exit codes mirror the CLI contract: 0 done, 5 interrupted-but-
resumable (graceful drain), 130 hard interrupt.

The first stdout line is always ``run-id: <id>`` so the harness can
learn what to pass to ``--resume``.  ``--metrics-json`` dumps the
*session* counters (``checkpoint.replayed``,
``engine.points_executed``, ...) at campaign end for the harness's
zero-re-execution assertions.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (  # noqa: E402
    CampaignInterrupted,
    CheckpointJournal,
    ExperimentEngine,
    expand_grid,
    graceful_drain,
)
from repro.obs import RunContext, get_registry  # noqa: E402

#: A tiny Sweep3D instance so every grid point replays in milliseconds.
TINY = dict(nx=8, ny=8, nz=4, mk=2, angle_block=2, iterations=1)


def campaign_points():
    """The deterministic grid every chaos run executes (8 points)."""
    return expand_grid(
        ["sweep3d"],
        variants=("original", "real"),
        bandwidths=(None, 100.0, 50.0, 25.0),
        nranks=4,
        app_params=TINY,
    )


def render_table(points, results) -> str:
    """The campaign's final table: one row per grid point.

    Floats are ``repr``-formatted, so two runs that produced the same
    results render bitwise-identical text.
    """
    rows = ["app variant bandwidth duration efficiency"]
    for p, r in zip(points, results):
        bw = "inf" if p.bandwidth_mbps is None else repr(p.bandwidth_mbps)
        rows.append(f"{p.app} {p.variant} {bw} "
                    f"{r.duration!r} {r.parallel_efficiency!r}")
    return "\n".join(rows) + "\n"


def dump_metrics(path: str | None) -> None:
    if not path:
        return
    reg = get_registry()
    Path(path).write_text(json.dumps(reg.snapshot()["counters"], indent=1))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--obs-dir", required=True)
    ap.add_argument("--cache-dir", default=None)
    ap.add_argument("--out", required=True)
    ap.add_argument("--resume", default=None, metavar="RUN_ID")
    ap.add_argument("--jobs", type=int, default=1)
    ap.add_argument("--metrics-json", default=None)
    args = ap.parse_args(argv)

    run = RunContext(args.obs_dir, command="chaos-campaign",
                     run_id=args.resume, resume=bool(args.resume))
    print(f"run-id: {run.run_id}", flush=True)
    journal = CheckpointJournal(run.dir / "journal.jsonl", run_id=run.run_id)
    engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir,
                              checkpoint=journal)
    points = campaign_points()
    try:
        with graceful_drain(engine):
            if os.environ.get("REPRO_TEST_CHAOS_SELF_SIGTERM"):
                # Deterministic drain: deliver SIGTERM to ourselves with
                # the handler armed, as an operator's `kill` would.
                os.kill(os.getpid(), signal.SIGTERM)
            results = engine.run_grid(points)
    except CampaignInterrupted as exc:
        dump_metrics(args.metrics_json)
        run.finalize(status="interrupted")
        journal.close()
        print(f"interrupted: {exc}", file=sys.stderr)
        return 5
    except KeyboardInterrupt:
        run.finalize(status="error")
        journal.close()
        return 130
    Path(args.out).write_text(render_table(points, results))
    dump_metrics(args.metrics_json)
    run.finalize(status="ok")
    journal.close()
    engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
