"""Tests of the histogram/heatmap analysis views."""

import numpy as np
import pytest

from repro.dimemas.replay import simulate
from repro.paraver.histogram import (
    Histogram,
    flight_time_histogram,
    message_size_histogram,
    render_heatmap,
    render_histogram,
    state_duration_histogram,
)


@pytest.fixture
def result(pipeline_trace, machine):
    return simulate(pipeline_trace, machine)


class TestHistogramBasics:
    def test_counts_and_total(self, result):
        h = message_size_histogram(result, bins=8)
        assert h.total == len(result.messages)
        assert len(h.edges) == len(h.counts) + 1

    def test_mean_midpoint_close_to_true(self, result):
        h = flight_time_histogram(result, bins=20)
        true = np.mean([m.flight_time for m in result.messages])
        assert h.mean() == pytest.approx(true, rel=0.2)

    def test_empty_samples(self):
        from repro.dimemas.results import SimResult
        empty = SimResult(nranks=1, duration=1.0, rank_end=[1.0],
                          states=[[]], messages=[], events=[[]])
        h = message_size_histogram(empty)
        assert h.total == 0 and h.mean() == 0.0

    def test_single_valued_samples(self, result):
        # all pipeline messages are the same size: degenerate range
        h = message_size_histogram(result, bins=4)
        assert h.total > 0

    def test_state_duration_histogram(self, result):
        h = state_duration_histogram(result, "Running", bins=6)
        running = sum(
            1 for iv in result.states for (s, _, _) in iv if s == "Running")
        assert h.total == running

    def test_log_bins(self, result):
        h = state_duration_histogram(result, "Running", bins=6, log=True)
        if h.total:
            assert (np.diff(h.edges) > 0).all()


class TestRendering:
    def test_render_histogram_bars(self, result):
        text = render_histogram(message_size_histogram(result, bins=5))
        lines = text.splitlines()
        assert len(lines) == 6
        assert "message sizes" in lines[0]
        assert any("#" in l for l in lines[1:])

    def test_render_histogram_empty(self):
        h = Histogram("x", np.array([0.0, 1.0]), np.zeros(1, dtype=int))
        assert "n=0" in render_histogram(h)

    def test_render_heatmap_shape(self, result):
        text = render_heatmap(result, "Running", width=40)
        rows = [l for l in text.splitlines() if l.startswith("rank")]
        assert len(rows) == result.nranks
        assert all(len(r.split("|")[1]) == 40 for r in rows)

    def test_heatmap_running_dominates(self, result):
        text = render_heatmap(result, "Running", width=30)
        # pipeline ranks compute most of the time: dense ramp chars
        assert "@" in text or "%" in text
