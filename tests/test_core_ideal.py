"""Tests of the ideal-pattern schedule (the paper's second overlapped trace)."""

import numpy as np
import pytest

from repro.core.ideal import ideal_transform
from repro.core.transform import overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.trace.records import CHANNEL_CHUNK, CpuBurst, ISend, Wait
from repro.trace.validate import validate
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app

CFG = MachineConfig(bandwidth_mbps=100.0, latency=5e-6)


def chunk_send_times(trace, rank):
    """Virtual times of the chunk ISends of one rank."""
    proc = trace[rank]
    starts = proc.virtual_starts()
    return [
        float(starts[i]) for i, r in enumerate(proc.records)
        if isinstance(r, ISend) and r.channel == CHANNEL_CHUNK
    ]


class TestUniformDistribution:
    def test_sends_spread_through_production_interval(self):
        """Ideal chunk sends sit at 1/n, 2/n, ... of the interval."""
        app = make_pipeline_app(elements=400, work=1_000_000, iterations=1,
                                prod=[(0.0, 1.0), (1.0, 1.0)])  # fully late
        tr = run_traced(app, 2, mips=1000.0).trace
        out, _ = ideal_transform(tr, chunks=4)
        validate(out, strict=True)
        times = chunk_send_times(out, 0)
        burst = 1_000_000 / (1000.0 * 1e6)
        expect = [burst * k / 4 for k in (1, 2, 3, 4)]
        assert times == pytest.approx(expect, rel=1e-6)

    def test_ideal_beats_fully_late_real_pattern(self):
        app = make_pipeline_app(elements=400, work=1_000_000, iterations=3,
                                prod=[(0.0, 0.999), (1.0, 1.0)],
                                cons=[(0.0, 0.0), (1.0, 0.001)])
        tr = run_traced(app, 5, mips=1000.0).trace
        real = simulate(overlap_transform(tr)[0], CFG).duration
        ideal = simulate(ideal_transform(tr)[0], CFG).duration
        assert ideal < real

    def test_ideal_table_rows_from_construction(self):
        """An app built with linear anchors measures as the ideal rows."""
        from repro.core.patterns import production_table
        app = make_pipeline_app(elements=1000, iterations=2,
                                prod=[(0.0, 0.0), (1.0, 1.0)],
                                cons=[(0.0, 0.0), (1.0, 1.0)])
        tr = run_traced(app, 2).trace
        p = production_table(tr, channel=0)
        assert p.first_element == pytest.approx(0.0, abs=0.01)
        assert p.quarter == pytest.approx(0.25, abs=0.02)


class TestCausalityBounds:
    def test_relay_forward_not_advanced_before_arrival(self):
        """A rank that receives and immediately forwards gives the ideal
        schedule zero computation to spread into: the forward chunk
        sends must stay behind the inbound waits."""
        def relay(comm):
            n = 64
            buf = np.zeros(n)
            if comm.rank == 0:
                comm.compute(100_000, stores=[(buf, np.arange(n))])
                comm.send(buf, 1, tag=0)
            elif comm.rank == 1:
                comm.Recv(buf, 0, tag=0)
                comm.send(buf, 2, tag=0)     # zero compute in between
            else:
                comm.Recv(buf, 1, tag=0)
                comm.compute(100_000, loads=[(buf, np.arange(n))])
        tr = run_traced(relay, 3, mips=1000.0).trace
        out, _ = ideal_transform(tr, chunks=4)
        validate(out, strict=True)
        # replay must not stall and must respect the chain:
        res = simulate(out, CFG)
        # rank 2 cannot finish before rank 0's compute plus two hops
        assert res.rank_end[2] > res.rank_end[0]

    def test_reduction_chains_keep_their_serialization(self):
        """Collective trees must not collapse under the ideal schedule
        (the tree relays have no compute region to advance into)."""
        def app(comm):
            x, y = np.zeros(1), np.zeros(1)
            for _ in range(4):
                comm.compute(500_000, loads=[(y, [0], np.array([0.01]))],
                             stores=[(x, [0], np.array([0.99]))])
                comm.Allreduce(x, y)
        tr = run_traced(app, 8, mips=1000.0).trace
        base = simulate(tr, CFG).duration
        ideal = simulate(ideal_transform(tr)[0], CFG).duration
        # scalar reductions are unchunkable and relay-bound: near-zero gain
        assert ideal >= base * 0.95

    def test_wait_not_before_original_completion_point(self):
        """Receiver chunk waits never move before the original Wait
        (the IRecv/Send/Waitall idiom must not deadlock)."""
        def halo(comm):
            n = 128
            sb, rb = np.zeros(n), np.zeros(n)
            other = 1 - comm.rank
            for _ in range(3):
                comm.compute(200_000, stores=[(sb, np.arange(n))])
                req = comm.Irecv(rb, other, tag=1)
                comm.send(sb, other, tag=1)
                comm.waitall([req])
                comm.compute(100_000, loads=[(rb, np.arange(n))])
        tr = run_traced(halo, 2, mips=1000.0).trace
        out, _ = ideal_transform(tr)
        validate(out, strict=True)
        res = simulate(out, CFG)  # must not raise ReplayError
        assert res.duration > 0


class TestComputePreservation:
    def test_burst_total_preserved_exactly(self, pipeline_trace):
        out, _ = ideal_transform(pipeline_trace)
        for orig, new in zip(pipeline_trace, out):
            o = sum(r.duration for r in orig if isinstance(r, CpuBurst))
            n = sum(r.duration for r in new if isinstance(r, CpuBurst))
            assert n == pytest.approx(o, rel=1e-12)

    def test_all_chunk_requests_waited(self, pipeline_trace):
        out, _ = ideal_transform(pipeline_trace)
        for proc in out:
            posted = {r.request for r in proc if isinstance(r, ISend)}
            waited = {q for r in proc if isinstance(r, Wait) for q in r.requests}
            assert posted <= waited
