"""Tests of network sweeps and the adaptive-chunking extension."""

import pytest

from repro.core.transform import OverlapConfig, overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.experiments.pipeline import AppExperiment
from repro.experiments.sweeps import ascii_series, bandwidth_sweep, latency_sweep
from repro.trace.records import CHANNEL_CHUNK, ISend
from repro.trace.validate import validate


@pytest.fixture(scope="module")
def exp():
    return AppExperiment("cg", nranks=4, app_params=dict(n=8000, iterations=2),
                         machine=MachineConfig.paper_testbed("cg"))


class TestBandwidthSweep:
    def test_durations_monotone_in_bandwidth(self, exp):
        sw = bandwidth_sweep(exp, [10.0, 50.0, 250.0])
        for series in sw.durations.values():
            assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))

    def test_all_variants_present(self, exp):
        sw = bandwidth_sweep(exp, [50.0, 250.0])
        assert set(sw.durations) == {"original", "real", "ideal"}

    def test_speedups_relative_to_original(self, exp):
        sw = bandwidth_sweep(exp, [50.0, 250.0])
        assert sw.speedups("original") == (1.0, 1.0)

    def test_crossover_detection(self):
        from repro.experiments.sweeps import SweepResult
        sw = SweepResult("bandwidth_mbps", (1.0, 2.0, 3.0), {
            "original": (10.0, 8.0, 6.0),
            "real": (9.0, 7.99, 6.3),
        })
        assert sw.crossover("real") == 3.0

    def test_no_crossover(self):
        from repro.experiments.sweeps import SweepResult
        sw = SweepResult("x", (1.0, 2.0), {
            "original": (10.0, 8.0), "real": (5.0, 4.0)})
        assert sw.crossover("real") is None


class TestLatencySweep:
    def test_durations_monotone_in_latency(self, exp):
        sw = latency_sweep(exp, [1e-6, 16e-6, 64e-6])
        for series in sw.durations.values():
            assert all(a <= b + 1e-12 for a, b in zip(series, series[1:]))


class TestAsciiSeries:
    def test_renders_with_marks_and_legend(self, exp):
        sw = bandwidth_sweep(exp, [50.0, 250.0])
        text = ascii_series(sw, width=30, height=6)
        assert "legend:" in text
        assert "o" in text and "duration vs bandwidth_mbps" in text
        body = [l for l in text.splitlines() if l.startswith("|")]
        assert len(body) == 6 and all(len(l) == 32 for l in body)


class TestAdaptiveChunking:
    def test_chunks_for_policy(self):
        cfg = OverlapConfig(chunks=8, chunk_bytes=1000)
        assert cfg.chunks_for(500) == 1
        assert cfg.chunks_for(1000) == 1
        assert cfg.chunks_for(2500) == 3
        assert cfg.chunks_for(10**6) == 8  # capped

    def test_fixed_scheme_by_default(self):
        assert OverlapConfig(chunks=4).chunks_for(10**9) == 4

    def test_invalid_chunk_bytes(self):
        with pytest.raises(ValueError):
            OverlapConfig(chunk_bytes=0)

    def test_adaptive_transform_valid_and_size_dependent(self, pipeline_trace):
        out, stats = overlap_transform(
            pipeline_trace, OverlapConfig(chunks=8, chunk_bytes=256))
        validate(out, strict=True)
        sizes = {r.size for p in out for r in p
                 if isinstance(r, ISend) and r.channel == CHANNEL_CHUNK}
        assert sizes  # produced chunked traffic
        # pipeline messages are 64*8=512 bytes -> 2 chunks of ~256
        assert max(sizes) <= 256
