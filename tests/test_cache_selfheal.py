"""Self-healing caches: quarantine and rebuild of corrupt entries.

Every corruption a killed or buggy writer can produce — truncation,
bit-flips, garbage, stale schema, orphaned staging files — must be
detected on load, moved into ``quarantine/`` for inspection, and
transparently rebuilt.  A corrupted cache may cost time, never
correctness.
"""

import json
import multiprocessing
import os

import pytest

from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.experiments.cache import (
    SimResultCache,
    TraceCache,
    sweep_cache_dir,
    trace_digest,
)
from repro.trace import dim
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app

MACHINE = MachineConfig(bandwidth_mbps=100.0, latency=10e-6, buses=4)


@pytest.fixture(scope="module")
def trace():
    return run_traced(make_pipeline_app(), 4, mips=1000.0).trace


def quarantined(directory):
    qdir = directory / "quarantine"
    return sorted(qdir.iterdir()) if qdir.is_dir() else []


class TestTraceCacheHealing:
    def seed(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        key = cache.key(app="pipeline", nranks=4)
        cache.load_or_build(key, lambda: trace)
        cache.flush()  # publication is asynchronous; land it before damage
        return cache, key, cache.path_for(key)

    @pytest.mark.parametrize("damage", [
        lambda t: t[: len(t) // 2],              # truncated by a kill
        lambda t: b"!! not a trace !!\n",        # garbage
        lambda t: bytes([t[0] ^ 0x40]) + t[1:],  # magic destroyed
        lambda t: t[:4] + b"\x63\x00\x00\x00" + t[8:],   # foreign version
        lambda t: t[:-20] + bytes([t[-20] ^ 1]) + t[-19:],  # bit flip
    ])
    def test_bad_entry_quarantined_and_rebuilt(self, tmp_path, trace, damage):
        cache, key, path = self.seed(tmp_path, trace)
        good = dim.dumps(trace)
        path.write_bytes(damage(path.read_bytes()))

        fresh = TraceCache(tmp_path)
        rebuilt = fresh.load_or_build(key, lambda: trace)
        fresh.flush()
        assert dim.dumps(rebuilt) == good
        assert fresh.rebuilt == 1 and fresh.misses == 1
        assert len(quarantined(tmp_path)) == 1
        # the healed entry verifies: next open is a clean hit
        again = TraceCache(tmp_path)
        again.load_or_build(key, lambda: pytest.fail("should be cached"))
        assert again.hits == 1 and again.rebuilt == 0

    def test_repeated_quarantine_preserves_evidence(self, tmp_path, trace):
        cache, key, path = self.seed(tmp_path, trace)
        for _ in range(3):
            path.write_text("garbage\n")
            cache.load_or_build(key, lambda: trace)
            cache.flush()
        # three distinct corpses, none clobbered
        assert len(quarantined(tmp_path)) == 3


class TestSimResultCacheHealing:
    def seed(self, tmp_path, trace):
        cache = SimResultCache(tmp_path)
        result = cache.load_or_simulate(trace, MACHINE)
        return cache, cache.key(trace, MACHINE), result

    @pytest.mark.parametrize("damage", [
        lambda t: t[:-10],                       # truncated
        lambda t: t.replace('"duration"', '"duraXion"', 1),  # bit flip
        lambda t: json.dumps(json.loads(t)["result"]),  # pre-envelope entry
        lambda t: t.replace('"schema":1', '"schema":99', 1),  # future schema
    ])
    def test_bad_entry_requarantined_and_resimulated(self, tmp_path, trace,
                                                     damage):
        cache, key, result = self.seed(tmp_path, trace)
        path = cache.path_for(key)
        path.write_text(damage(path.read_text()))

        fresh = SimResultCache(tmp_path)
        healed = fresh.load_or_simulate(trace, MACHINE)
        assert fresh.rebuilt == 1 and fresh.misses == 1
        assert len(quarantined(tmp_path)) == 1
        # the healed value is the true simulation, bit for bit
        truth = simulate(trace, MACHINE)
        assert healed.duration == truth.duration
        assert healed.rank_end == truth.rank_end
        assert SimResultCache(tmp_path).load(key).duration == truth.duration

    def test_corrupt_entry_never_returns_garbage(self, tmp_path, trace):
        # a bit-flip *inside* a number must not surface as a wrong value
        cache, key, result = self.seed(tmp_path, trace)
        path = cache.path_for(key)
        text = path.read_text()
        dur = repr(result.duration)
        assert dur in text
        path.write_text(text.replace(dur, repr(result.duration * 10), 1))
        assert SimResultCache(tmp_path).load(key) is None

    def test_malformed_digest_quarantined(self, tmp_path, trace):
        cache = SimResultCache(tmp_path)
        cache.put_digest("speckey", trace_digest(trace))
        assert cache.get_digest("speckey") == trace_digest(trace)
        (tmp_path / "speckey.digest").write_text("ZZ-not-hex")
        assert cache.get_digest("speckey") is None
        assert len(quarantined(tmp_path)) == 1
        # healable: a rewrite works again
        cache.put_digest("speckey", trace_digest(trace))
        assert cache.get_digest("speckey") == trace_digest(trace)


class TestOrphanSweep:
    DEAD_PID = 2 ** 22 + 12345  # beyond default pid_max: never alive

    def test_dead_writer_tmp_swept_on_open(self, tmp_path):
        orphan = tmp_path / f"abc123.dim.{self.DEAD_PID}.tmp"
        orphan.write_text("half-written")
        TraceCache(tmp_path)
        assert not orphan.exists()

    def test_live_writer_tmp_kept(self, tmp_path):
        busy = tmp_path / f"abc123.dim.{os.getpid()}.tmp"
        busy.write_text("mid-publish")
        TraceCache(tmp_path)
        assert busy.exists()

    def test_sweep_cache_dir_removes_own_tmps_too(self, tmp_path):
        # the Ctrl-C path: even this process's staging files are garbage
        for sub in ("traces", "replays"):
            d = tmp_path / sub
            d.mkdir()
            (d / f"k.x.{os.getpid()}.tmp").write_text("")
            (d / f"k.y.{self.DEAD_PID}.tmp").write_text("")
        assert sweep_cache_dir(tmp_path) == 4
        assert not list(tmp_path.rglob("*.tmp"))


def _heal_worker(directory, barrier, q):
    """Race a rebuild of one corrupted entry against a sibling process."""
    cache = TraceCache(directory)
    key = cache.key(app="pipeline", nranks=4)
    built = []

    def build():
        built.append(1)
        return run_traced(make_pipeline_app(), 4, mips=1000.0).trace

    barrier.wait()
    trace = cache.load_or_build(key, build)
    q.put((dim.dumps(trace), len(built)))


class TestConcurrentHealing:
    def test_corrupt_entry_healed_under_concurrent_writers(self, tmp_path,
                                                           trace):
        cache = TraceCache(tmp_path)
        key = cache.key(app="pipeline", nranks=4)
        cache.load_or_build(key, lambda: trace)
        cache.flush()
        cache.path_for(key).write_text("corrupted beyond repair\n")

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        q = ctx.Queue()
        procs = [
            ctx.Process(target=_heal_worker, args=(str(tmp_path), barrier, q))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        outs = [q.get(timeout=120) for _ in range(2)]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

        # both racers got the true trace, no matter who quarantined
        good = dim.dumps(trace)
        assert [o[0] for o in outs] == [good, good]
        assert sum(o[1] for o in outs) >= 1  # somebody rebuilt
        # the corpse is in quarantine and the published entry verifies
        assert quarantined(tmp_path)
        healed = TraceCache(tmp_path)
        healed.load_or_build(key, lambda: pytest.fail("should be cached"))
        assert healed.hits == 1
        assert not list(tmp_path.glob("*.tmp"))
