"""Unit tests of the trace record model."""

import math

import numpy as np
import pytest

from repro.trace.records import (
    AccessProfile,
    CHANNEL_APP,
    CHANNEL_CHUNK,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)


class TestCpuBurst:
    def test_duration_stored(self):
        assert CpuBurst(0.5).duration == 0.5

    def test_numpy_duration_coerced_to_float(self):
        b = CpuBurst(np.float64(0.25))
        assert type(b.duration) is float

    def test_instructions_optional(self):
        assert CpuBurst(1.0).instructions is None
        assert CpuBurst(1.0, instructions=2300).instructions == 2300

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_invalid_duration_rejected(self, bad):
        with pytest.raises(ValueError):
            CpuBurst(bad)

    def test_zero_duration_allowed(self):
        assert CpuBurst(0.0).duration == 0.0


class TestPointToPoint:
    def test_send_fields(self):
        s = Send(peer=3, tag=7, size=1024, channel=CHANNEL_APP, sub=0)
        assert s.dest == 3 and s.tag == 7 and s.size == 1024

    def test_recv_source_alias(self):
        assert Recv(peer=2, tag=0, size=8).source == 2

    def test_negative_peer_rejected(self):
        with pytest.raises(ValueError):
            Send(peer=-1, tag=0, size=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Recv(peer=0, tag=0, size=-4)

    def test_isend_request_default(self):
        assert ISend(peer=0, tag=0, size=1).request == -1

    def test_irecv_elements_field(self):
        r = IRecv(peer=0, tag=0, size=80, elements=10)
        assert r.elements == 10

    def test_chunk_channel_constant_distinct(self):
        assert CHANNEL_CHUNK != CHANNEL_APP


class TestWait:
    def test_requests_tuple(self):
        assert Wait([1, 2]).requests == (1, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Wait(())


class TestGlobalOp:
    def test_roundtrip_op_enum(self):
        g = GlobalOp(op=CollOp.ALLREDUCE, root=0, send_size=8, recv_size=8, seq=3)
        assert g.op is CollOp.ALLREDUCE and g.seq == 3

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            GlobalOp(op=CollOp.BCAST, send_size=-1)


class TestAccessProfile:
    def make(self, times, lo=0.0, hi=1.0, kind="production"):
        return AccessProfile(kind=kind, times=np.asarray(times, float),
                             interval_start=lo, interval_end=hi)

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            self.make([0.5], kind="bogus")

    def test_interval_order_validated(self):
        with pytest.raises(ValueError):
            self.make([0.5], lo=2.0, hi=1.0)

    def test_elements(self):
        assert self.make([0.1, 0.2, 0.3]).elements == 3

    def test_normalized_maps_interval_to_unit(self):
        p = self.make([2.0, 3.0], lo=2.0, hi=4.0)
        assert np.allclose(p.normalized(), [0.0, 0.5])

    def test_normalized_clips_out_of_interval(self):
        p = self.make([-1.0, 9.0], lo=0.0, hi=1.0)
        assert np.allclose(p.normalized(), [0.0, 1.0])

    def test_normalized_preserves_nan(self):
        p = self.make([np.nan, 0.5])
        out = p.normalized()
        assert math.isnan(out[0]) and out[1] == 0.5

    def test_zero_span_interval(self):
        p = self.make([1.0, np.nan], lo=1.0, hi=1.0)
        out = p.normalized()
        assert out[0] == 0.0 and math.isnan(out[1])
        assert p.span == 0.0

    def test_clipped(self):
        p = self.make([-5.0, 0.25, 7.0], lo=0.0, hi=1.0)
        assert np.allclose(p.clipped(), [0.0, 0.25, 1.0])

    def test_normalized_stream_absent(self):
        assert self.make([0.5]).normalized_stream() is None

    def test_normalized_stream_present(self):
        p = AccessProfile(
            kind="consumption", times=np.array([0.5]),
            interval_start=0.0, interval_end=2.0,
            stream=(np.array([0, 0]), np.array([0.5, 1.0])),
        )
        offs, norm = p.normalized_stream()
        assert np.allclose(norm, [0.25, 0.5])
        assert offs.tolist() == [0, 0]


class TestProcessTrace:
    def test_rank_validation(self):
        with pytest.raises(ValueError):
            ProcessTrace(-1)

    def test_virtual_starts_prefix_sums(self):
        p = ProcessTrace(0, [CpuBurst(1.0), Send(peer=0, tag=0, size=4), CpuBurst(2.0)])
        assert p.virtual_starts().tolist() == [0.0, 1.0, 1.0, 3.0]
        assert p.virtual_duration == 3.0

    def test_append_invalidates_cache(self):
        p = ProcessTrace(0, [CpuBurst(1.0)])
        assert p.virtual_duration == 1.0
        p.append(CpuBurst(0.5))
        assert p.virtual_duration == 1.5

    def test_count(self):
        p = ProcessTrace(0, [CpuBurst(1.0), CpuBurst(1.0), Event("x")])
        assert p.count(CpuBurst) == 2
        assert p.count(Event) == 1

    def test_iteration_and_indexing(self):
        recs = [CpuBurst(1.0), Event("a")]
        p = ProcessTrace(0, recs)
        assert list(p) == recs and p[1] is recs[1] and len(p) == 2


class TestTraceSet:
    def test_rank_order_enforced(self):
        with pytest.raises(ValueError):
            TraceSet([ProcessTrace(1), ProcessTrace(0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSet([])

    def test_totals(self):
        ts = TraceSet([
            ProcessTrace(0, [CpuBurst(1.0)]),
            ProcessTrace(1, [CpuBurst(2.0), Event("e")]),
        ])
        assert ts.nranks == 2
        assert ts.total_records() == 3
        assert ts.total_virtual_compute() == pytest.approx(3.0)

    def test_copy_is_independent(self):
        ts = TraceSet([ProcessTrace(0, [CpuBurst(1.0)])], meta={"a": 1})
        cp = ts.copy()
        cp.meta["a"] = 2
        cp[0].append(CpuBurst(1.0))
        assert ts.meta["a"] == 1 and len(ts[0]) == 1
