"""Tests of the on-disk trace and replay-result caches."""

import dataclasses
import multiprocessing

from repro.experiments.cache import SimResultCache, TraceCache, trace_digest
from repro.experiments.pipeline import AppExperiment
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.perturb import BandwidthWindow, PerturbationSchedule
from repro.trace import dim


class TestTraceCache:
    def test_miss_then_hit(self, tmp_path, pipeline_trace):
        cache = TraceCache(tmp_path)
        key = cache.key(app="x", nranks=4)
        calls = []
        def build():
            calls.append(1)
            return pipeline_trace
        a = cache.load_or_build(key, build)
        b = cache.load_or_build(key, build)
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1
        assert dim.dumps(a) == dim.dumps(b)

    def test_key_sensitive_to_fields(self):
        k1 = TraceCache.key(app="cg", nranks=4, params={})
        k2 = TraceCache.key(app="cg", nranks=8, params={})
        k3 = TraceCache.key(app="cg", nranks=4, params={"n": 10})
        assert len({k1, k2, k3}) == 3

    def test_clear_and_len(self, tmp_path, pipeline_trace):
        cache = TraceCache(tmp_path)
        cache.load_or_build(cache.key(a=1), lambda: pipeline_trace)
        cache.load_or_build(cache.key(a=2), lambda: pipeline_trace)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_creates_directory(self, tmp_path):
        cache = TraceCache(tmp_path / "deep" / "nested")
        assert cache.directory.is_dir()


class TestExperimentIntegration:
    def test_experiment_uses_cache_across_instances(self, tmp_path):
        cache = TraceCache(tmp_path)
        kwargs = dict(
            app_params=dict(n=4000, iterations=2),
            machine=MachineConfig.paper_testbed("cg"),
            cache=cache,
        )
        e1 = AppExperiment("cg", nranks=4, **kwargs)
        t1 = e1.trace("original")
        e2 = AppExperiment("cg", nranks=4, **kwargs)
        t2 = e2.trace("original")
        assert cache.misses == 1 and cache.hits == 1
        assert dim.dumps(t1) == dim.dumps(t2)
        # cached traces still drive the full pipeline
        s = e2.speedups()
        assert s["real"] > 0.5

    def test_streams_bypass_cache(self, tmp_path):
        cache = TraceCache(tmp_path)
        e = AppExperiment(
            "cg", nranks=4, record_streams=True,
            app_params=dict(n=2000, iterations=1),
            machine=MachineConfig.paper_testbed("cg"), cache=cache,
        )
        e.trace("original")
        assert len(cache) == 0

    def test_experiment_sim_cache_across_instances(self, tmp_path):
        sim_cache = SimResultCache(tmp_path)
        kwargs = dict(
            app_params=dict(n=2000, iterations=1),
            machine=MachineConfig.paper_testbed("cg"),
            sim_cache=sim_cache,
        )
        e1 = AppExperiment("cg", nranks=4, **kwargs)
        d1 = e1.duration("original")
        e2 = AppExperiment("cg", nranks=4, **kwargs)
        d2 = e2.duration("original")
        assert sim_cache.misses == 1 and sim_cache.hits == 1
        assert d1 == d2  # exact: floats round-trip through JSON

    def test_warm_hit_skips_trace_building(self, tmp_path):
        sim_cache = SimResultCache(tmp_path)
        kwargs = dict(
            app_params=dict(n=2000, iterations=1),
            machine=MachineConfig.paper_testbed("cg"),
            sim_cache=sim_cache,
        )
        e1 = AppExperiment("cg", nranks=4, **kwargs)
        d1 = e1.duration("original")
        # the spec->digest index lets a fresh instance answer from the
        # cache without tracing or transforming anything
        e2 = AppExperiment("cg", nranks=4, **kwargs)
        d2 = e2.duration("original")
        assert d2 == d1
        assert e2._traces == {}

    def test_platform_variations_get_distinct_entries(self, tmp_path):
        sim_cache = SimResultCache(tmp_path)
        e = AppExperiment(
            "cg", nranks=4, app_params=dict(n=2000, iterations=1),
            machine=MachineConfig.paper_testbed("cg"), sim_cache=sim_cache,
        )
        d250 = e.duration("original")
        d100 = e.duration("original", bandwidth_mbps=100.0)
        assert d100 != d250
        assert len(sim_cache) == 2


def _race_builder():
    from repro.tracer.tracefile import run_traced
    from tests.conftest import make_pipeline_app
    return run_traced(make_pipeline_app(elements=16, iterations=2),
                      2, mips=1000.0).trace


def _race_worker(directory: str, barrier, q) -> None:
    cache = TraceCache(directory)
    key = cache.key(app="race", n=2)
    barrier.wait()  # maximize the chance both processes build+publish
    trace = cache.load_or_build(key, _race_builder)
    q.put(dim.dumps(trace))


class TestConcurrentWriters:
    def test_two_processes_same_key(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        q = ctx.Queue()
        procs = [
            ctx.Process(target=_race_worker, args=(str(tmp_path), barrier, q))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        outs = [q.get(timeout=120) for _ in range(2)]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        # both writers succeed with identical content; the published
        # file is complete and no temp files leak
        assert outs[0] == outs[1]
        files = list(tmp_path.glob("*.rct"))
        assert len(files) == 1
        # published entry is a complete columnar container holding the
        # same trace both builders produced
        from repro.trace.columnar import decode
        stored = decode(files[0].read_bytes()).to_traceset()
        assert dim.dumps(stored) == outs[0]
        assert not list(tmp_path.glob("*.tmp"))


class TestSimResultCache:
    def test_miss_then_hit_exact_roundtrip(self, tmp_path, pipeline_trace,
                                           machine):
        cache = SimResultCache(tmp_path)
        cache.load_or_simulate(pipeline_trace, machine)
        restored = cache.load_or_simulate(pipeline_trace, machine)
        assert cache.misses == 1 and cache.hits == 1
        fresh = simulate(pipeline_trace, machine)
        assert restored.duration == fresh.duration
        assert restored.rank_end == fresh.rank_end
        assert restored.states == fresh.states
        assert restored.messages == fresh.messages
        assert restored.events == fresh.events

    def test_key_sensitive_to_every_machine_field(self, pipeline_trace):
        base = MachineConfig()
        variations = dict(
            bandwidth_mbps=100.0, latency=1e-5, buses=4, input_ports=2,
            output_ports=2, cpu_ratio=2.0, cores_per_node=2,
            intra_latency=2e-6, intra_bandwidth_mbps=1000.0,
            eager_threshold=1024, collective_model_factor=2.0,
            max_events=1_000_000, max_sim_time=3600.0,
            perturb=PerturbationSchedule(
                bandwidth=(BandwidthWindow(0.0, 1.0, 0.5),)
            ),
        )
        # the variation list covers the whole platform: adding a new
        # MachineConfig knob must extend this test
        assert set(variations) == {
            f.name for f in dataclasses.fields(MachineConfig)
        }
        keys = {SimResultCache.key(pipeline_trace, base)}
        for name, value in variations.items():
            keys.add(SimResultCache.key(
                pipeline_trace, dataclasses.replace(base, **{name: value}),
            ))
        assert len(keys) == len(variations) + 1

    def test_key_sensitive_to_trace_content(self, pipeline_trace, machine):
        from repro.tracer.tracefile import run_traced
        from tests.conftest import make_pipeline_app
        other = run_traced(make_pipeline_app(iterations=2), 4,
                           mips=1000.0).trace
        assert SimResultCache.key(pipeline_trace, machine) != \
            SimResultCache.key(other, machine)

    def test_runner_hook_and_clear(self, tmp_path, pipeline_trace, machine):
        cache = SimResultCache(tmp_path)
        calls = []

        def runner(trace, m):
            calls.append(1)
            return simulate(trace, m)

        cache.load_or_simulate(pipeline_trace, machine, runner=runner)
        cache.load_or_simulate(pipeline_trace, machine, runner=runner)
        assert calls == [1]
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_trace_digest_stable(self, pipeline_trace):
        d1 = trace_digest(pipeline_trace)
        d2 = trace_digest(pipeline_trace)  # memoized path
        assert d1 == d2
        assert len(d1) == 24
