"""Tests of the on-disk trace cache."""

import pytest

from repro.experiments.cache import TraceCache
from repro.experiments.pipeline import AppExperiment
from repro.dimemas.machine import MachineConfig
from repro.trace import dim


class TestTraceCache:
    def test_miss_then_hit(self, tmp_path, pipeline_trace):
        cache = TraceCache(tmp_path)
        key = cache.key(app="x", nranks=4)
        calls = []
        def build():
            calls.append(1)
            return pipeline_trace
        a = cache.load_or_build(key, build)
        b = cache.load_or_build(key, build)
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1
        assert dim.dumps(a) == dim.dumps(b)

    def test_key_sensitive_to_fields(self):
        k1 = TraceCache.key(app="cg", nranks=4, params={})
        k2 = TraceCache.key(app="cg", nranks=8, params={})
        k3 = TraceCache.key(app="cg", nranks=4, params={"n": 10})
        assert len({k1, k2, k3}) == 3

    def test_clear_and_len(self, tmp_path, pipeline_trace):
        cache = TraceCache(tmp_path)
        cache.load_or_build(cache.key(a=1), lambda: pipeline_trace)
        cache.load_or_build(cache.key(a=2), lambda: pipeline_trace)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_creates_directory(self, tmp_path):
        cache = TraceCache(tmp_path / "deep" / "nested")
        assert cache.directory.is_dir()


class TestExperimentIntegration:
    def test_experiment_uses_cache_across_instances(self, tmp_path):
        cache = TraceCache(tmp_path)
        kwargs = dict(
            app_params=dict(n=4000, iterations=2),
            machine=MachineConfig.paper_testbed("cg"),
            cache=cache,
        )
        e1 = AppExperiment("cg", nranks=4, **kwargs)
        t1 = e1.trace("original")
        e2 = AppExperiment("cg", nranks=4, **kwargs)
        t2 = e2.trace("original")
        assert cache.misses == 1 and cache.hits == 1
        assert dim.dumps(t1) == dim.dumps(t2)
        # cached traces still drive the full pipeline
        s = e2.speedups()
        assert s["real"] > 0.5

    def test_streams_bypass_cache(self, tmp_path):
        cache = TraceCache(tmp_path)
        e = AppExperiment(
            "cg", nranks=4, record_streams=True,
            app_params=dict(n=2000, iterations=1),
            machine=MachineConfig.paper_testbed("cg"), cache=cache,
        )
        e.trace("original")
        assert len(cache) == 0
