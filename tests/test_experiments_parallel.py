"""Tests of the parallel experiment engine and the batched bisection."""

import math

import pytest

from repro.dimemas.machine import MachineConfig
from repro.experiments.bandwidth import (
    NonMonotonePredicateError,
    bisect_bandwidth,
    bisect_bandwidth_batched,
    equivalent_bandwidth,
    relaxation_bandwidth,
)
from repro.experiments.parallel import (
    ExperimentEngine,
    GridPoint,
    expand_grid,
    speedup_grid,
)
from repro.experiments.pipeline import AppExperiment

#: A tiny Sweep3D instance so traces build in milliseconds.
TINY = dict(nx=8, ny=8, nz=4, mk=2, angle_block=2, iterations=1)


def tiny_exp(nranks=4):
    return AppExperiment("sweep3d", nranks=nranks, app_params=TINY)


def tiny_points():
    return expand_grid(
        ["sweep3d"],
        variants=("original", "real"),
        bandwidths=(None, 100.0),
        nranks=4,
        app_params=TINY,
    )


class TestGridPoint:
    def test_hashable_and_picklable(self):
        import pickle

        p = GridPoint(app="cg", bandwidth_mbps=100.0, app_params=(("n", 4),))
        assert hash(p) == hash(pickle.loads(pickle.dumps(p)))

    def test_experiment_key_ignores_platform_overrides(self):
        a = GridPoint(app="cg", bandwidth_mbps=100.0, buses=4)
        b = GridPoint(app="cg", bandwidth_mbps=500.0, buses=1)
        assert a.experiment_key() == b.experiment_key()
        c = GridPoint(app="cg", nranks=8)
        assert a.experiment_key() != c.experiment_key()

    def test_expand_grid_is_full_product(self):
        pts = expand_grid(
            ["cg", "bt"], variants=("original", "real"),
            bandwidths=(100.0, 250.0), buses=("default", 4),
        )
        assert len(pts) == 2 * 2 * 2 * 2
        assert len(set(pts)) == len(pts)


class TestEngineSerial:
    def test_durations_match_direct_experiment(self):
        exp = tiny_exp()
        eng = ExperimentEngine(jobs=1)
        pts = tiny_points()
        expected = [
            exp.duration(p.variant, bandwidth_mbps=p.bandwidth_mbps)
            for p in pts
        ]
        assert eng.durations(pts) == expected

    def test_run_grid_returns_results_in_input_order(self):
        eng = ExperimentEngine(jobs=1)
        pts = tiny_points()
        results = eng.run_grid(pts)
        assert [r.duration for r in results] == eng.durations(pts)

    def test_experiment_reuse(self):
        eng = ExperimentEngine(jobs=1)
        pts = tiny_points()
        eng.durations(pts)
        # all four points share one traced experiment bundle
        assert len(eng._experiments) == 1

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)


class TestEngineParallel:
    def test_parallel_identical_to_serial(self, tmp_path):
        pts = tiny_points()
        serial = ExperimentEngine(jobs=1).durations(pts)
        with ExperimentEngine(jobs=2, cache_dir=tmp_path) as eng:
            assert eng.durations(pts) == serial
            # second pass is answered from the persistent cache
            assert eng.durations(pts) == serial
            assert [r.duration for r in eng.run_grid(pts)] == serial

    def test_speedup_grid_matches_experiment_speedups(self):
        # engine-side grid vs the AppExperiment memoized path
        eng = ExperimentEngine(jobs=1)
        exp = AppExperiment("sweep3d", nranks=4, app_params=TINY)
        pts = [
            GridPoint(app="sweep3d", variant=v, nranks=4,
                      app_params=tuple(sorted(TINY.items())))
            for v in ("original", "real", "ideal")
        ]
        d0, dr, di = eng.durations(pts)
        s = exp.speedups()
        assert d0 / dr == pytest.approx(s["real"])
        assert d0 / di == pytest.approx(s["ideal"])

    def test_speedup_grid_shape(self):
        with ExperimentEngine(jobs=1) as eng:
            exp = tiny_exp()
            pt = eng.point_for(exp)
            eng._experiments[pt.experiment_key()] = exp
            out = speedup_grid(eng, ["sweep3d"], nranks=4, chunks=4)
        # the engine-built experiment uses default app params, so only
        # check the contract: both ratios present and positive
        assert set(out) == {"sweep3d"}
        assert out["sweep3d"]["real"] > 0
        assert out["sweep3d"]["ideal"] > 0


class TestBisectEdgeCases:
    def test_lo_equals_hi_satisfied(self):
        assert bisect_bandwidth(lambda bw: True, lo=10.0, hi=10.0) == 10.0

    def test_lo_equals_hi_unsatisfied(self):
        assert math.isinf(bisect_bandwidth(lambda bw: False, lo=10.0, hi=10.0))

    def test_invalid_brackets(self):
        with pytest.raises(ValueError):
            bisect_bandwidth(lambda bw: True, lo=-1.0, hi=10.0)
        with pytest.raises(ValueError):
            bisect_bandwidth(lambda bw: True, lo=10.0, hi=1.0)
        with pytest.raises(ValueError):
            bisect_bandwidth(lambda bw: True, rel_tol=0.0)

    def test_rel_tol_convergence(self):
        # the returned value satisfies the predicate and overestimates
        # the true threshold by at most rel_tol
        thr = 73.19
        for tol in (0.1, 0.01, 0.001):
            got = bisect_bandwidth(lambda bw: bw >= thr, rel_tol=tol)
            assert got >= thr
            assert got <= thr * (1 + tol) * (1 + 1e-12)

    def test_unsatisfiable_returns_inf(self):
        assert math.isinf(bisect_bandwidth(lambda bw: False))

    def test_always_satisfied_returns_lo(self):
        assert bisect_bandwidth(lambda bw: True, lo=3.0) == 3.0


class TestBatchedBisect:
    @pytest.mark.parametrize("thr", [0.3, 1.0, 5.0, 123.456, 9999.0, 127999.0])
    @pytest.mark.parametrize("batch", [1, 3, 7, 15])
    def test_bitwise_identical_to_sequential(self, thr, batch):
        seq = bisect_bandwidth(lambda bw: bw >= thr)
        bat = bisect_bandwidth_batched(
            lambda bws: [bw >= thr for bw in bws], batch=batch,
        )
        assert seq == bat  # exact float equality, not approx

    def test_identical_under_rel_tol_variations(self):
        thr = 42.0
        for tol in (0.1, 0.01, 0.001):
            seq = bisect_bandwidth(lambda bw: bw >= thr, rel_tol=tol)
            bat = bisect_bandwidth_batched(
                lambda bws: [bw >= thr for bw in bws], rel_tol=tol,
            )
            assert seq == bat

    def test_lo_equals_hi(self):
        assert bisect_bandwidth_batched(
            lambda bws: [True] * len(bws), lo=10.0, hi=10.0,
        ) == 10.0
        assert math.isinf(bisect_bandwidth_batched(
            lambda bws: [False] * len(bws), lo=10.0, hi=10.0,
        ))

    def test_non_monotone_raises(self):
        # true above 5 MB/s except a hole at [25, 40]: the speculative
        # tree of the first round probes both flanks of the hole
        # (~5.6 true, ~31.6 false) and detects the violation
        def holey_many(bws):
            return [bw >= 5.0 and not (25.0 <= bw <= 40.0) for bw in bws]

        with pytest.raises(NonMonotonePredicateError):
            bisect_bandwidth_batched(holey_many, lo=1.0, hi=1000.0, batch=7)

    def test_non_monotone_at_bracket_raises(self):
        def inverted(bws):
            return [bw <= 10.0 for bw in bws]

        with pytest.raises(NonMonotonePredicateError):
            bisect_bandwidth_batched(inverted, lo=1.0, hi=1000.0)

    def test_wrong_answer_count_raises(self):
        with pytest.raises(ValueError):
            bisect_bandwidth_batched(lambda bws: [True], lo=1.0, hi=1000.0)

    def test_fewer_rounds_than_sequential_probes(self):
        calls = {"seq": 0, "bat": 0}

        def pred(bw):
            calls["seq"] += 1
            return bw >= 50.0

        def pred_many(bws):
            calls["bat"] += 1
            return [bw >= 50.0 for bw in bws]

        bisect_bandwidth(pred)
        bisect_bandwidth_batched(pred_many, batch=7)
        # 7-probe batches descend 3 levels per round: far fewer rounds
        assert calls["bat"] < calls["seq"] / 2


class TestEngineBackedSearches:
    def test_relaxation_identical(self, tmp_path):
        exp = tiny_exp()
        seq = relaxation_bandwidth(exp)
        with ExperimentEngine(jobs=2, cache_dir=tmp_path) as eng:
            bat = relaxation_bandwidth(tiny_exp(), engine=eng)
        assert seq == bat

    def test_equivalent_identical(self, tmp_path):
        exp = tiny_exp()
        seq = equivalent_bandwidth(exp)
        with ExperimentEngine(jobs=2, cache_dir=tmp_path) as eng:
            bat = equivalent_bandwidth(tiny_exp(), engine=eng)
        assert seq == bat

    def test_serial_engine_reuses_experiment_memo(self):
        exp = tiny_exp()
        eng = ExperimentEngine(jobs=1)
        pred = eng.duration_predicate_many(
            exp, "real", exp.duration("original"),
        )
        before = len(exp._sims)
        pred([100.0, 200.0])
        # serial predicate goes through the experiment's own memo
        assert len(exp._sims) >= before + 2


class TestEngineWiredHelpers:
    def test_calibration_and_sweeps_identical(self):
        from repro.experiments.calibration import (
            bus_sensitivity, calibrate_buses, saturation_knee,
        )
        from repro.experiments.sweeps import bandwidth_sweep, latency_sweep

        exp = tiny_exp()
        with ExperimentEngine(jobs=2) as eng:
            assert bus_sensitivity(exp, [1, 2, 4]) == \
                bus_sensitivity(exp, [1, 2, 4], engine=eng)
            assert saturation_knee(exp, max_buses=8) == \
                saturation_knee(exp, max_buses=8, engine=eng)
            ref = exp.duration("original", buses=4)
            assert calibrate_buses(exp, ref, max_buses=8) == \
                calibrate_buses(exp, ref, max_buses=8, engine=eng)
            assert bandwidth_sweep(exp, [100.0, 250.0]) == \
                bandwidth_sweep(exp, [100.0, 250.0], engine=eng)
            assert latency_sweep(exp, [1e-6, 8e-6]) == \
                latency_sweep(exp, [1e-6, 8e-6], engine=eng)

    def test_scaling_study_identical(self):
        from repro.experiments.scaling import scaling_study

        serial = scaling_study("sweep3d", rank_counts=(2, 4), app_params=TINY)
        with ExperimentEngine(jobs=2) as eng:
            parallel = scaling_study(
                "sweep3d", rank_counts=(2, 4), app_params=TINY, engine=eng,
            )
        assert serial == parallel


class TestWithPlatform:
    def test_no_overrides_returns_self(self):
        m = MachineConfig()
        assert m.with_platform() is m

    def test_overrides_replace_fields(self):
        m = MachineConfig()
        m2 = m.with_platform(bandwidth_mbps=500.0, buses=4)
        assert m2.bandwidth_mbps == 500.0 and m2.buses == 4
        assert m.bandwidth_mbps == 250.0 and m.buses is None

    def test_validation_reruns(self):
        with pytest.raises(ValueError):
            MachineConfig().with_platform(bandwidth_mbps=-1.0)
