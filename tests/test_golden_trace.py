"""Golden-trace regression: format and determinism stability.

The trace format and the tracer's output are contracts: saved traces
must keep loading, and the same program must keep producing the same
trace.  This test pins both with a golden file generated once and
committed; if a change legitimately alters the format or the tracer's
output, regenerate with::

    python -m tests.test_golden_trace
"""

from pathlib import Path

import numpy as np

from repro.trace import dim
from repro.trace.validate import validate
from repro.tracer import run_traced

GOLDEN = Path(__file__).parent / "data" / "golden_pingpong.dim"


def golden_app(comm):
    """Small fixed program covering every record kind."""
    buf = np.zeros(16)
    offs = np.arange(16)
    comm.event("iteration", 0)
    if comm.rank == 0:
        comm.compute(1000, stores=[(buf, offs, np.linspace(0.5, 1.0, 16))])
        comm.send(buf, 1, tag=7)
        req = comm.irecv(1, tag=8)
        comm.wait(req)
    else:
        inb = np.zeros(16)
        comm.Recv(inb, 0, tag=7)
        comm.compute(500, loads=[(inb, offs)])
        comm.isend("done", 0, tag=8).wait()
    comm.allreduce(float(comm.rank))
    sub = comm.split(color=0, key=comm.rank)
    sub.barrier()


def build_golden() -> str:
    return dim.dumps(run_traced(golden_app, 2, mips=1000.0).trace)


class TestGoldenTrace:
    def test_tracer_output_matches_golden(self):
        assert GOLDEN.exists(), (
            "golden file missing; generate with python -m tests.test_golden_trace"
        )
        assert build_golden() == GOLDEN.read_text()

    def test_golden_still_loads_and_validates(self):
        ts = dim.load(GOLDEN)
        assert ts.nranks == 2
        validate(ts, strict=True)

    def test_golden_replays(self):
        from repro.dimemas import MachineConfig, simulate
        res = simulate(dim.load(GOLDEN), MachineConfig())
        assert res.duration > 0


if __name__ == "__main__":
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(build_golden())
    print(f"wrote {GOLDEN}")
