"""Tests of the critical-path analysis."""

import pytest

from repro.core.transform import overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.paraver.critical import critical_path, render_path
from repro.trace.records import CpuBurst, ProcessTrace, Recv, Send, TraceSet

US = 1e-6
CFG = MachineConfig(bandwidth_mbps=100.0, latency=10e-6)


def ts(*rank_records) -> TraceSet:
    return TraceSet([ProcessTrace(r, list(recs))
                     for r, recs in enumerate(rank_records)])


class TestHandBuiltPaths:
    def test_pure_compute_path(self):
        res = simulate(ts([CpuBurst(100 * US)]), CFG)
        path = critical_path(res)
        assert path.hops == 0
        assert path.breakdown() == {"compute": pytest.approx(100 * US)}
        assert path.fraction("compute") == pytest.approx(1.0)

    def test_single_hop_decomposition(self):
        res = simulate(ts(
            [CpuBurst(100 * US), Send(peer=1, tag=0, size=1000)],
            [Recv(peer=0, tag=0, size=1000)],
        ), CFG)
        path = critical_path(res)
        assert path.hops == 1
        bd = path.breakdown()
        # sender compute 100us + wire/latency 20us
        assert bd["compute"] == pytest.approx(100 * US)
        assert bd["wire"] == pytest.approx(20 * US)
        assert path.length == pytest.approx(res.duration)

    def test_pipeline_path_crosses_all_ranks(self):
        chain = ts(
            [CpuBurst(100 * US), Send(peer=1, tag=0, size=1000)],
            [Recv(peer=0, tag=0, size=1000), CpuBurst(100 * US),
             Send(peer=2, tag=0, size=1000)],
            [Recv(peer=1, tag=0, size=1000), CpuBurst(100 * US)],
        )
        res = simulate(chain, CFG)
        path = critical_path(res)
        assert path.hops == 2
        assert path.length == pytest.approx(res.duration)
        assert {s.rank for s in path.segments} == {0, 1, 2}

    def test_queueing_attributed(self):
        cfg = MachineConfig(bandwidth_mbps=100.0, latency=10e-6, buses=1)
        res = simulate(ts(
            [Send(peer=2, tag=0, size=1000)],
            [Send(peer=3, tag=0, size=1000)],
            [Recv(peer=0, tag=0, size=1000)],
            [Recv(peer=1, tag=0, size=1000)],
        ), cfg)
        path = critical_path(res)
        assert path.breakdown().get("queue", 0.0) == pytest.approx(10 * US)

    def test_collective_attributed(self):
        from repro.trace.records import CollOp, GlobalOp
        res = simulate(ts(
            [CpuBurst(50 * US), GlobalOp(op=CollOp.BARRIER, seq=1)],
            [CpuBurst(200 * US), GlobalOp(op=CollOp.BARRIER, seq=1)],
        ), CFG)
        path = critical_path(res)
        assert path.breakdown().get("collective", 0.0) > 0


class TestOnRealPipeline:
    def test_path_covers_makespan(self, pipeline_trace, machine):
        res = simulate(pipeline_trace, machine)
        path = critical_path(res)
        assert path.length == pytest.approx(res.duration, rel=1e-6)

    def test_overlap_shrinks_wire_share(self, machine):
        """After overlap, the critical path is more compute-bound."""
        from repro.tracer import run_traced
        from tests.conftest import make_pipeline_app
        tr = run_traced(
            make_pipeline_app(elements=4096, work=1_000_000,
                              prod=[(0.0, 0.2), (1.0, 1.0)]),
            4, mips=1000.0).trace
        p0 = critical_path(simulate(tr, machine))
        p1 = critical_path(simulate(overlap_transform(tr)[0], machine))
        assert p1.fraction("compute") >= p0.fraction("compute") - 1e-9

    def test_render(self, pipeline_trace, machine):
        res = simulate(pipeline_trace, machine)
        text = render_path(critical_path(res))
        assert "critical path" in text and "compute" in text
        assert "longest segments" in text
