"""Serialization tests of the Dimemas-dialect trace format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import dim
from repro.trace.records import (
    AccessProfile,
    CollOp,
    CpuBurst,
    Event,
    GlobalOp,
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)


def roundtrip(ts: TraceSet) -> TraceSet:
    return dim.loads(dim.dumps(ts))


def make_full_trace() -> TraceSet:
    prod = AccessProfile(
        kind="production", times=np.array([0.1, np.nan, 0.3]),
        interval_start=0.0, interval_end=0.5,
    )
    cons = AccessProfile(
        kind="consumption", times=np.array([0.6, 0.7, np.nan]),
        interval_start=0.5, interval_end=1.0,
    )
    p0 = ProcessTrace(0, [
        Event("iteration", 0),
        CpuBurst(0.5, instructions=1000),
        Send(peer=1, tag=3, size=24, elements=3, production=prod),
        ISend(peer=1, tag=4, size=8, elements=1, request=1, rendezvous=False),
        Wait((1,)),
        GlobalOp(op=CollOp.ALLREDUCE, root=0, send_size=8, recv_size=8, seq=1),
    ])
    p1 = ProcessTrace(1, [
        IRecv(peer=0, tag=4, size=8, elements=1, request=2),
        Recv(peer=0, tag=3, size=24, elements=3, consumption=cons),
        Wait((2,)),
        CpuBurst(0.25),
        GlobalOp(op=CollOp.ALLREDUCE, root=0, send_size=8, recv_size=8, seq=1),
    ])
    return TraceSet([p0, p1], meta={"app": "test", "mips": 1000.0})


class TestRoundTrip:
    def test_identity_on_full_trace(self):
        ts = make_full_trace()
        assert dim.dumps(roundtrip(ts)) == dim.dumps(ts)

    def test_meta_preserved(self):
        ts = roundtrip(make_full_trace())
        assert ts.meta["app"] == "test" and ts.meta["mips"] == 1000.0

    def test_profile_values_preserved_exactly(self):
        ts = roundtrip(make_full_trace())
        send = ts[0][2]
        assert isinstance(send, Send)
        times = send.production.times
        assert times[0] == 0.1 and np.isnan(times[1]) and times[2] == 0.3
        assert send.production.interval_end == 0.5

    def test_consumption_attaches_to_recv(self):
        ts = roundtrip(make_full_trace())
        recv = ts[1][1]
        assert isinstance(recv, Recv) and recv.consumption is not None
        assert recv.consumption.kind == "consumption"

    def test_rendezvous_flag_tristate(self):
        for rv in (None, True, False):
            ts = TraceSet([ProcessTrace(0, [Send(peer=0, tag=0, size=1, rendezvous=rv)])])
            assert roundtrip(ts)[0][0].rendezvous is rv

    def test_numpy_scalars_serializable(self):
        ts = TraceSet([ProcessTrace(0, [CpuBurst(np.float64(0.125))])])
        assert roundtrip(ts)[0][0].duration == 0.125

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.dim"
        ts = make_full_trace()
        dim.dump(ts, path)
        assert dim.dumps(dim.load(path)) == dim.dumps(ts)


class TestErrors:
    def test_missing_magic(self):
        with pytest.raises(dim.TraceFormatError, match="magic"):
            dim.loads("B:1.0:-\n")

    def test_record_before_process(self):
        with pytest.raises(dim.TraceFormatError):
            dim.loads("#DIMEMAS-REPRO:1\nB:1.0:-\n")

    def test_unknown_record_kind(self):
        with pytest.raises(dim.TraceFormatError, match="unknown"):
            dim.loads("#DIMEMAS-REPRO:1\nP:0\nZZ:1:2\n")

    def test_malformed_fields(self):
        with pytest.raises(dim.TraceFormatError):
            dim.loads("#DIMEMAS-REPRO:1\nP:0\nS:0:0\n")

    def test_bad_rendezvous_flag(self):
        with pytest.raises(dim.TraceFormatError):
            dim.loads("#DIMEMAS-REPRO:1\nP:0\nS:0:0:8:0:0:1:0:x\n")

    def test_orphan_profile_line(self):
        text = "#DIMEMAS-REPRO:1\nP:0\nB:1.0:-\nAP:production:0.0:1.0:0:\n"
        with pytest.raises(dim.TraceFormatError, match="attach"):
            dim.loads(text)

    def test_profile_count_mismatch(self):
        import base64
        payload = base64.b64encode(np.zeros(2).tobytes()).decode()
        text = (
            "#DIMEMAS-REPRO:1\nP:0\nS:0:0:8:0:0:1:0:-\n"
            f"AP:production:0.0:1.0:3:{payload}\n"
        )
        with pytest.raises(dim.TraceFormatError, match="mismatch"):
            dim.loads(text)

    def test_empty_trace_rejected(self):
        with pytest.raises(dim.TraceFormatError, match="no processes"):
            dim.loads("#DIMEMAS-REPRO:1\n")


@st.composite
def random_process(draw, rank: int):
    n = draw(st.integers(0, 12))
    recs = []
    req = 0
    pending = []
    for _ in range(n):
        kind = draw(st.sampled_from(["B", "S", "R", "IS", "E"]))
        if kind == "B":
            recs.append(CpuBurst(draw(st.floats(0, 1e-3, allow_nan=False))))
        elif kind == "S":
            recs.append(Send(peer=draw(st.integers(0, 3)),
                             tag=draw(st.integers(0, 9)),
                             size=draw(st.integers(0, 4096))))
        elif kind == "R":
            recs.append(Recv(peer=draw(st.integers(0, 3)),
                             tag=draw(st.integers(0, 9)),
                             size=draw(st.integers(0, 4096))))
        elif kind == "IS":
            req += 1
            recs.append(ISend(peer=0, tag=0, size=8, request=req))
            pending.append(req)
        else:
            recs.append(Event(draw(st.sampled_from(["it", "phase"])),
                              draw(st.integers(0, 5))))
    if pending:
        recs.append(Wait(tuple(pending)))
    return ProcessTrace(rank, recs)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_random_traces(data):
    """Any structurally-valid trace round-trips byte-identically."""
    nranks = data.draw(st.integers(1, 4))
    procs = [data.draw(random_process(r)) for r in range(nranks)]
    ts = TraceSet(procs, meta={"seed": 1})
    assert dim.dumps(roundtrip(ts)) == dim.dumps(ts)
