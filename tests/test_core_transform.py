"""Tests of the overlap transformation — the paper's core mechanism."""

import numpy as np
import pytest

from repro.core.matching import match_messages
from repro.core.transform import OverlapConfig, chunk_sub, overlap_transform
from repro.core.ideal import ideal_transform
from repro.dimemas import simulate
from repro.trace.records import (
    CHANNEL_CHUNK,
    CpuBurst,
    ISend,
    Recv,
    Send,
)
from repro.trace.validate import validate
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app


class TestChunkSub:
    def test_distinct_keys(self):
        keys = {chunk_sub(ch, sub, c) for ch in (0, 1) for sub in (0, 1, 7)
                for c in range(4)}
        assert len(keys) == 2 * 3 * 4

    def test_range_validation(self):
        with pytest.raises(ValueError):
            chunk_sub(0, 0, 256)
        with pytest.raises(ValueError):
            chunk_sub(16, 0, 0)
        with pytest.raises(ValueError):
            chunk_sub(0, 1 << 16, 0)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = OverlapConfig()
        assert cfg.chunks == 4 and cfg.schedule == "real"
        assert cfg.advance_sends and cfg.postpone_receptions
        assert cfg.double_buffering

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            OverlapConfig(schedule="magic")

    def test_kwargs_form(self, pipeline_trace):
        out, _ = overlap_transform(pipeline_trace, chunks=2)
        assert out.meta["overlap"]["chunks"] == 2

    def test_config_and_kwargs_exclusive(self, pipeline_trace):
        with pytest.raises(TypeError):
            overlap_transform(pipeline_trace, OverlapConfig(), chunks=2)


class TestStructure:
    def test_output_validates(self, pipeline_trace):
        out, _ = overlap_transform(pipeline_trace)
        validate(out, strict=True)

    def test_original_untouched(self, pipeline_trace):
        from repro.trace import dim
        before = dim.dumps(pipeline_trace)
        overlap_transform(pipeline_trace)
        assert dim.dumps(pipeline_trace) == before

    def test_chunked_messages_on_chunk_channel(self, pipeline_trace):
        out, stats = overlap_transform(pipeline_trace)
        chunk_sends = [
            r for p in out for r in p
            if isinstance(r, ISend) and r.channel == CHANNEL_CHUNK
        ]
        assert len(chunk_sends) == stats.chunks_created

    def test_original_app_messages_removed(self, pipeline_trace):
        out, _ = overlap_transform(pipeline_trace)
        leftover = [
            r for p in out for r in p
            if isinstance(r, (Send, Recv)) and r.channel == 0 and r.size > 0
        ]
        assert leftover == []

    def test_retransform_rejected(self, pipeline_trace):
        out, _ = overlap_transform(pipeline_trace)
        with pytest.raises(ValueError, match="already contains"):
            overlap_transform(out)

    def test_compute_time_preserved_per_rank(self, pipeline_trace):
        out, _ = overlap_transform(pipeline_trace)
        for orig, new in zip(pipeline_trace, out):
            assert new.virtual_duration == pytest.approx(
                orig.virtual_duration, rel=1e-9,
            )

    def test_chunk_sizes_sum_to_original(self, pipeline_trace):
        orig_bytes = sum(
            r.size for p in pipeline_trace for r in p
            if isinstance(r, (Send, ISend)) and r.channel == 0
        )
        out, _ = overlap_transform(pipeline_trace)
        chunk_bytes = sum(
            r.size for p in out for r in p
            if isinstance(r, ISend) and r.channel == CHANNEL_CHUNK
        )
        assert chunk_bytes == orig_bytes

    def test_matching_consistent_after_transform(self, pipeline_trace):
        out, _ = overlap_transform(pipeline_trace)
        pairs = match_messages(out)  # raises if inconsistent
        assert pairs


class TestSemantics:
    def test_sends_advanced_into_bursts(self):
        """An early producer's chunk sends move before the burst end."""
        app = make_pipeline_app(prod=[(0.0, 0.1), (1.0, 0.4)])
        tr = run_traced(app, 2, mips=1000.0).trace
        out, stats = overlap_transform(tr)
        assert stats.sends_advanced > 0
        # rank 0: some chunk ISend must appear before the last burst ends
        recs = out[0].records
        isend_pos = [i for i, r in enumerate(recs) if isinstance(r, ISend)]
        burst_pos = [i for i, r in enumerate(recs) if isinstance(r, CpuBurst)]
        assert isend_pos[0] < burst_pos[-1]

    def test_late_producer_not_advanced(self):
        app = make_pipeline_app(prod=[(0.0, 1.0), (1.0, 1.0)])
        tr = run_traced(app, 2, mips=1000.0).trace
        _, stats = overlap_transform(tr)
        assert stats.sends_advanced == 0

    def test_waits_postponed_for_late_consumer(self):
        app = make_pipeline_app(cons=[(0.0, 0.5), (1.0, 0.9)])
        tr = run_traced(app, 2, mips=1000.0).trace
        _, stats = overlap_transform(tr)
        assert stats.waits_postponed > 0

    def test_flags_disable_mechanisms(self, pipeline_trace):
        _, s1 = overlap_transform(pipeline_trace, OverlapConfig(advance_sends=False))
        assert s1.sends_advanced == 0
        _, s2 = overlap_transform(
            pipeline_trace, OverlapConfig(postpone_receptions=False))
        assert s2.waits_postponed == 0

    def test_double_buffering_controls_rendezvous(self, pipeline_trace):
        out_db, _ = overlap_transform(pipeline_trace, OverlapConfig(double_buffering=True))
        out_sb, _ = overlap_transform(pipeline_trace, OverlapConfig(double_buffering=False))
        rv_db = {r.rendezvous for p in out_db for r in p if isinstance(r, ISend)}
        rv_sb = {r.rendezvous for p in out_sb for r in p if isinstance(r, ISend)}
        assert rv_db == {False} and rv_sb == {True}

    def test_zero_size_messages_untouched(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(None, 1, tag=1)
            else:
                comm.recv(0, tag=1)
        tr = run_traced(app, 2).trace
        _, stats = overlap_transform(tr)
        assert stats.messages_transformed == 0

    def test_scalar_collectives_single_chunk_under_ideal(self):
        def app(comm):
            x, y = np.zeros(1), np.zeros(1)
            comm.compute(1000, stores=[(x, [0], np.array([0.9]))])
            comm.Allreduce(x, y)
            comm.compute(1000, loads=[(y, [0], np.array([0.1]))])
        tr = run_traced(app, 4).trace
        out, stats = ideal_transform(tr)
        chunk_recs = [r for p in out for r in p
                      if isinstance(r, ISend) and r.channel == CHANNEL_CHUNK]
        # every transformed scalar message stays whole (1 chunk)
        assert all(r.size == 8 for r in chunk_recs)

    def test_chunk_count_parameter(self, pipeline_trace):
        for ch in (1, 2, 8):
            out, stats = overlap_transform(pipeline_trace, chunks=ch)
            validate(out, strict=True)
            per_msg = stats.chunks_created / max(stats.messages_transformed, 1)
            assert per_msg <= ch


class TestReplayability:
    """Transformed traces must replay to completion on any platform."""

    @pytest.mark.parametrize("schedule", ["real", "ideal"])
    @pytest.mark.parametrize("double_buffering", [True, False])
    def test_pipeline_replays(self, pipeline_trace, machine, schedule,
                              double_buffering):
        out, _ = overlap_transform(pipeline_trace, OverlapConfig(
            schedule=schedule, double_buffering=double_buffering))
        res = simulate(out, machine)
        assert res.duration > 0

    def test_overlap_never_loses_much(self, pipeline_trace, machine):
        """Sanity: overlap may add chunk latency but not blow up."""
        base = simulate(pipeline_trace, machine).duration
        real = simulate(overlap_transform(pipeline_trace)[0], machine).duration
        assert real <= base * 1.25

    def test_ideal_at_least_as_good_as_real_on_linear_pipeline(self, machine):
        app = make_pipeline_app(elements=512, work=500_000,
                                prod=[(0.0, 0.3), (1.0, 1.0)],
                                cons=[(0.0, 0.0), (1.0, 0.7)])
        tr = run_traced(app, 6, mips=1000.0).trace
        base = simulate(tr, machine).duration
        real = simulate(overlap_transform(tr)[0], machine).duration
        ideal = simulate(ideal_transform(tr)[0], machine).duration
        assert ideal <= real * 1.05
        assert real <= base * 1.01
