"""Tests of the SimResult timeline container."""

import pytest

from repro.dimemas.results import MessageFlight, SimResult


def make_result() -> SimResult:
    return SimResult(
        nranks=2,
        duration=10.0,
        rank_end=[10.0, 8.0],
        states=[
            [("Running", 0.0, 6.0), ("Send", 6.0, 10.0)],
            [("Waiting a message", 0.0, 2.0), ("Running", 2.0, 8.0)],
        ],
        messages=[
            MessageFlight(src=0, dst=1, t_send=1.0, t_start=1.5,
                          t_recv=2.0, size=100, tag=3),
        ],
        events=[[(0.5, "iteration", 0), (5.0, "iteration", 1)], []],
    )


class TestStateAccounting:
    def test_time_in_state_single_rank(self):
        r = make_result()
        assert r.time_in_state("Running", 0) == 6.0
        assert r.time_in_state("Running", 1) == 6.0

    def test_time_in_state_all_ranks(self):
        assert make_result().time_in_state("Running") == 12.0

    def test_state_summary(self):
        s = make_result().state_summary()
        assert s == {"Running": 12.0, "Send": 4.0, "Waiting a message": 2.0}

    def test_compute_and_blocked(self):
        r = make_result()
        assert r.compute_time == 12.0
        assert r.blocked_time == 6.0

    def test_parallel_efficiency(self):
        assert make_result().parallel_efficiency == pytest.approx(12.0 / 20.0)


class TestMessageFlight:
    def test_derived_quantities(self):
        m = make_result().messages[0]
        assert m.flight_time == 1.0
        assert m.queue_delay == 0.5


class TestEventsAndWindow:
    def test_event_times(self):
        r = make_result()
        assert r.event_times("iteration") == [(0.5, 0), (5.0, 1)]
        assert r.event_times("missing") == []

    def test_window_clips_and_shifts(self):
        w = make_result().window(2.0, 6.0)
        assert w.duration == 4.0
        assert w.states[0] == [("Running", 0.0, 4.0)]
        assert w.states[1] == [("Running", 0.0, 4.0)]
        assert w.events[0] == [(3.0, "iteration", 1)]
        assert w.messages == []  # message not fully inside window

    def test_window_keeps_contained_messages(self):
        w = make_result().window(0.5, 3.0)
        assert len(w.messages) == 1
        assert w.messages[0].t_send == pytest.approx(0.5)


class TestJsonExport:
    def test_to_dict_fields(self):
        d = make_result().to_dict()
        assert d["nranks"] == 2 and d["duration"] == 10.0
        assert d["state_summary"]["Running"] == 12.0
        assert len(d["messages"]) == 1
        assert d["messages"][0]["src"] == 0

    def test_to_json_roundtrip(self):
        import json
        doc = make_result().to_json()
        parsed = json.loads(doc)
        assert parsed["parallel_efficiency"] == pytest.approx(0.6)

    def test_to_json_file(self, tmp_path):
        import json
        path = tmp_path / "r.json"
        make_result().to_json(path, include_states=False)
        parsed = json.loads(path.read_text())
        assert "states" not in parsed and "messages" in parsed

    def test_real_result_serializes(self, tmp_path):
        import json
        from repro.dimemas.replay import simulate
        from repro.dimemas.machine import MachineConfig
        from repro.tracer import run_traced
        from tests.conftest import make_pipeline_app
        res = simulate(run_traced(make_pipeline_app(), 3).trace,
                       MachineConfig())
        parsed = json.loads(res.to_json())
        assert parsed["nranks"] == 3
