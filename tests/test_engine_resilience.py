"""Resilient grid execution: crashes, hangs, retries, quarantine.

Worker failures are injected deterministically through the engine's
marker-file test hooks (``REPRO_TEST_*`` environment variables): the
first worker to claim the marker misbehaves exactly once, so every
scenario is reproducible without patching multiprocessing internals.
"""

import math

import pytest

from repro.experiments.bandwidth import relaxation_bandwidth
from repro.experiments.parallel import (
    DegradedBracketError,
    ExperimentEngine,
    GridExecutionError,
    GridPoint,
    PointFailure,
    RetryPolicy,
    expand_grid,
)
from repro.experiments.pipeline import AppExperiment
from repro.experiments.sweeps import bandwidth_sweep

#: A tiny Sweep3D instance so traces build in milliseconds.
TINY = dict(nx=8, ny=8, nz=4, mk=2, angle_block=2, iterations=1)


def tiny_points():
    return expand_grid(
        ["sweep3d"],
        variants=("original", "real"),
        bandwidths=(None, 100.0),
        nranks=4,
        app_params=TINY,
    )


#: A grid point that fails identically on every attempt.
POISON = GridPoint(app="no_such_app", nranks=4)


@pytest.fixture(scope="module")
def serial_reference():
    with ExperimentEngine(jobs=1) as eng:
        return eng.durations(tiny_points())


def arm(monkeypatch, tmp_path, env_var):
    marker = tmp_path / f"{env_var}.marker"
    marker.touch()
    monkeypatch.setenv(env_var, str(marker))
    return marker


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(point_timeout=0.0)

    def test_exponential_delay(self):
        p = RetryPolicy(backoff=0.1, backoff_factor=2.0)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(3) == pytest.approx(0.4)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_full_jitter_sleeps_inside_the_backoff_band(self):
        import random

        p = RetryPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.5)
        rng = random.Random(0)
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.4)):
            draws = [p.delay(attempt, rng) for _ in range(50)]
            lo, hi = base * 0.5, base
            assert all(lo <= d <= hi for d in draws), (attempt, draws)
            assert max(draws) - min(draws) > 0.0  # actually jittered

    def test_jitter_deterministic_per_seed_and_off_without_rng(self):
        import random

        p = RetryPolicy(backoff=0.1, jitter=1.0)
        a = [p.delay(1, random.Random(7)) for _ in range(3)]
        b = [p.delay(1, random.Random(7)) for _ in range(3)]
        assert a == b
        # No rng (or jitter=0) degrades to the plain exponential delay.
        assert p.delay(1) == pytest.approx(0.1)
        assert RetryPolicy(backoff=0.1).delay(
            1, random.Random(7)) == pytest.approx(0.1)


class TestWorkerFailures:
    def test_worker_exception_is_retried(self, monkeypatch, tmp_path,
                                         serial_reference):
        marker = arm(monkeypatch, tmp_path, "REPRO_TEST_RAISE_ONCE")
        with ExperimentEngine(jobs=2) as eng:
            got = eng.durations(tiny_points())
        assert got == serial_reference
        assert not marker.exists()  # the fault actually fired

    def test_killed_worker_does_not_abort_grid(self, monkeypatch, tmp_path,
                                               serial_reference):
        marker = arm(monkeypatch, tmp_path, "REPRO_TEST_KILL_WORKER_ONCE")
        with ExperimentEngine(jobs=2) as eng:
            got = eng.durations(tiny_points())
        assert got == serial_reference  # bitwise identical after recovery
        assert not marker.exists()

    def test_killed_worker_run_grid_results(self, monkeypatch, tmp_path):
        marker = arm(monkeypatch, tmp_path, "REPRO_TEST_KILL_WORKER_ONCE")
        with ExperimentEngine(jobs=1) as eng:
            ref = [r.duration for r in eng.run_grid(tiny_points())]
        with ExperimentEngine(jobs=2) as eng:
            got = [r.duration for r in eng.run_grid(tiny_points())]
        assert got == ref
        assert not marker.exists()

    def test_hung_worker_recycled_by_point_timeout(self, monkeypatch,
                                                   tmp_path,
                                                   serial_reference):
        marker = arm(monkeypatch, tmp_path, "REPRO_TEST_HANG_ONCE")
        retry = RetryPolicy(point_timeout=15.0, backoff=0.01)
        with ExperimentEngine(jobs=2, retry=retry) as eng:
            got = eng.durations(tiny_points())
        assert got == serial_reference
        assert not marker.exists()


class TestQuarantine:
    RETRY = RetryPolicy(max_attempts=2, backoff=0.01)

    def test_strict_mode_raises_with_failures(self, serial_reference):
        with ExperimentEngine(jobs=2, retry=self.RETRY) as eng:
            with pytest.raises(GridExecutionError) as ei:
                eng.durations(tiny_points()[:1] + [POISON])
            assert len(ei.value.failures) == 1
            failure = ei.value.failures[0]
            assert failure.point == POISON
            assert failure.attempts == 2  # the budget was honored
            assert POISON in eng.quarantine

    def test_degraded_mode_returns_sentinels(self, serial_reference):
        with ExperimentEngine(jobs=2, retry=self.RETRY, degraded=True) as eng:
            got = eng.durations(tiny_points()[:1] + [POISON])
        assert got[0] == serial_reference[0]  # survivors intact
        assert isinstance(got[1], PointFailure)
        assert "no_such_app" in got[1].describe()

    def test_degraded_serial_matches_contract(self, serial_reference):
        with ExperimentEngine(jobs=1, degraded=True) as eng:
            got = eng.durations(tiny_points()[:1] + [POISON])
        assert got[0] == serial_reference[0]
        assert isinstance(got[1], PointFailure)

    def test_strict_serial_raises(self):
        with ExperimentEngine(jobs=1) as eng:
            with pytest.raises(GridExecutionError):
                eng.durations([POISON])

    def test_failure_carries_attempt_history_and_traceback(self):
        """Post-mortem satellite: every attempt's (kind, wall, error)
        triple plus the worker traceback survive into the sentinel."""
        with ExperimentEngine(jobs=2, retry=self.RETRY, degraded=True) as eng:
            got = eng.durations(tiny_points()[:1] + [POISON])
        failure = got[1]
        assert isinstance(failure, PointFailure)
        assert len(failure.attempt_history) == 2
        for kind, seconds, error in failure.attempt_history:
            assert kind == "exception"
            assert seconds >= 0.0
            assert "no_such_app" in error
        assert "no_such_app" in failure.traceback
        assert "Traceback" in failure.traceback
        detail = failure.detail()
        assert "attempt 1:" in detail and "attempt 2:" in detail
        assert "worker traceback" in detail

    def test_serial_failure_carries_traceback(self):
        with ExperimentEngine(jobs=1, degraded=True) as eng:
            (failure,) = eng.durations([POISON])
        assert failure.attempt_history and failure.traceback
        assert "no_such_app" in failure.detail()


class TestDegradedConsumers:
    def test_bisection_refuses_degraded_bracket(self, monkeypatch):
        # every worker call fails: the predicate must raise, not guess
        exp = AppExperiment("sweep3d", nranks=4, app_params=TINY)
        retry = RetryPolicy(max_attempts=1)
        with ExperimentEngine(jobs=1, retry=retry, degraded=True) as eng:
            predicate = eng.duration_predicate_many(exp, "real", 1.0)
            monkeypatch.setattr(
                "repro.experiments.parallel._simulate_point",
                lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
            )
            with pytest.raises(DegradedBracketError):
                predicate([10.0, 100.0])

    def test_relaxation_search_works_on_degraded_engine(self):
        # healthy workers: degraded mode must not change the threshold
        exp = AppExperiment("sweep3d", nranks=4, app_params=TINY)
        base = relaxation_bandwidth(exp, "real")
        with ExperimentEngine(jobs=2, degraded=True) as eng:
            got = relaxation_bandwidth(exp, "real", engine=eng)
        assert got == base

    def test_sweep_maps_failures_to_nan(self, monkeypatch):
        exp = AppExperiment("sweep3d", nranks=4, app_params=TINY)
        retry = RetryPolicy(max_attempts=1)
        with ExperimentEngine(jobs=1, retry=retry, degraded=True) as eng:
            monkeypatch.setattr(
                "repro.experiments.parallel._simulate_point",
                lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
            )
            sweep = bandwidth_sweep(exp, bandwidths=[50.0, 100.0],
                                    variants=("original",), engine=eng)
        assert all(math.isnan(d) for d in sweep.durations["original"])
