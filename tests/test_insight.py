"""The simulated-time attribution subsystem (``repro.insight``).

Four contracts are pinned here:

* **Conservation** — per rank, attributed wait time sums exactly (to
  float tolerance) to the replay's recorded blocked time, on synthetic
  traces and on every paper application skeleton;
* **Non-perturbation** — an attributed replay is bitwise-identical to
  a plain one, and the ``insight=None`` default stays within noise of
  the uninstrumented path (the ``test_obs_fastpath`` pattern);
* **Paper §V ranking** — the attainable-overlap bound orders the pool
  the way the paper's Table II discussion does (CG pattern-friendly,
  Sweep3D pattern-hostile), and Sweep3D's residual waits are
  late-sender/dependency-chain dominated;
* **Schema** — the ``repro-explain`` JSON document validates against
  the checked-in schema via the stdlib-only validator.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

import pytest

from repro.apps import get_app
from repro.core.ideal import ideal_transform
from repro.core.transform import OverlapConfig, overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.insight import (
    CAUSES,
    InsightCollector,
    WaitSegment,
    attainable_overlap_bound,
    attribute,
    classify_wait,
    collect,
    explain_traces,
    render_html,
    render_text,
    scorecard,
    to_json,
)
from repro.trace.records import (
    CpuBurst,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from validate_schema import validate  # noqa: E402

APPS_POOL = ("sweep3d", "pop", "alya", "specfem3d", "bt", "cg")

_ATOL = 1e-9


def _blocked_by_rank(result):
    out = []
    for rank in range(result.nranks):
        out.append(sum(t1 - t0 for s, t0, t1 in result.states[rank]
                       if s != "Running"))
    return out


def _assert_conservation(result, attr):
    blocked = _blocked_by_rank(result)
    for rank in range(result.nranks):
        att = attr.rank_total(rank)
        assert att == pytest.approx(blocked[rank], abs=_ATOL), (
            f"rank {rank}: attributed {att} != blocked {blocked[rank]}"
        )


def _ping_pong(size=200_000, nranks=2) -> TraceSet:
    procs = [
        ProcessTrace(0, [CpuBurst(duration=1e-3),
                         Send(peer=1, tag=0, size=size)]),
        ProcessTrace(1, [Recv(peer=0, tag=0, size=size),
                         CpuBurst(duration=1e-4)]),
    ]
    procs += [ProcessTrace(r) for r in range(2, nranks)]
    return TraceSet(procs)


# ---------------------------------------------------------------------- #
# Conservation invariant
# ---------------------------------------------------------------------- #
class TestConservation:
    def test_ping_pong(self):
        res, col = collect(_ping_pong(), MachineConfig())
        _assert_conservation(res, attribute(res, col))

    @pytest.mark.parametrize("app", APPS_POOL)
    def test_app_skeletons_original(self, app):
        trace = get_app(app).trace(nranks=8).trace
        res, col = collect(trace, MachineConfig.paper_testbed(app))
        _assert_conservation(res, attribute(res, col))

    @pytest.mark.parametrize("app", ("cg", "sweep3d"))
    def test_app_skeletons_overlapped(self, app):
        trace = get_app(app).trace(nranks=8).trace
        real, _ = overlap_transform(trace, OverlapConfig(chunks=4))
        res, col = collect(real, MachineConfig.paper_testbed(app))
        _assert_conservation(res, attribute(res, col))

    def test_constrained_network_surfaces_contention(self):
        """With one bus, queued transfers must be attributed — and the
        sum invariant must survive the contention segments."""
        # Eager-size messages: all three transfers hit the single bus
        # at t=0, so two of them must queue.  Rank 0 receives in reverse
        # submission order, so it blocks on the last-queued transfer
        # while that transfer is still waiting for the bus.
        procs = [ProcessTrace(0, [Recv(peer=r, tag=0, size=32_768)
                                  for r in (3, 2, 1)])]
        procs += [ProcessTrace(r, [Send(peer=0, tag=0, size=32_768)])
                  for r in range(1, 4)]
        res, col = collect(TraceSet(procs), MachineConfig(buses=1))
        attr = attribute(res, col)
        _assert_conservation(res, attr)
        assert attr.totals()["bus_contention"] > 0
        assert attr.queued_transfers > 0

    def test_collective_time_attributed(self):
        trace = get_app("cg").trace(nranks=4).trace
        res, col = collect(trace, MachineConfig())
        attr = attribute(res, col)
        _assert_conservation(res, attr)
        # CG's skeleton carries allreduce phases.
        has_coll = any(s == "Group communication"
                       for states in res.states for s, _a, _b in states)
        if has_coll:
            assert attr.totals()["collective"] > 0

    def test_phase_tables_cover_total(self):
        trace = get_app("bt").trace(nranks=4).trace
        res, col = collect(trace, MachineConfig())
        attr = attribute(res, col)
        phase_total = sum(v for row in attr.phases.values()
                          for v in row.values())
        assert phase_total == pytest.approx(attr.total_wait, rel=1e-6)


# ---------------------------------------------------------------------- #
# Non-perturbation
# ---------------------------------------------------------------------- #
class TestNonPerturbation:
    def test_attributed_replay_identical(self):
        trace = get_app("cg").trace(nranks=8).trace
        machine = MachineConfig.paper_testbed("cg")
        plain = simulate(trace, machine)
        attributed, _col = collect(trace, machine)
        assert plain.duration == attributed.duration
        assert plain.rank_end == attributed.rank_end
        assert plain.states == attributed.states
        assert plain.messages == attributed.messages

    def test_disabled_path_within_noise(self):
        """insight=None replays run at the plain-replay speed: both
        paths execute the same dead-branch code, so the run-to-run
        spread bounds the hook cost together with machine noise
        (test_obs_fastpath pattern; best-of-5 with a generous 50%
        tolerance — shared CI runners are noisy, and the tight
        measurement lives in bench_replay.py's ``insight`` row)."""
        trace = get_app("cg").trace(nranks=4).trace
        machine = MachineConfig(bandwidth_mbps=250.0)
        simulate(trace, machine)  # warm plan memo

        def best_of(k, insight_factory):
            best = float("inf")
            for _ in range(k):
                t0 = time.perf_counter()
                simulate(trace, machine, insight=insight_factory())
                best = min(best, time.perf_counter() - t0)
            return best

        a = best_of(5, lambda: None)
        b = best_of(5, lambda: None)
        assert abs(a - b) / max(a, b) < 0.5, (
            f"replay wall-clock unstable: {a:.4f}s vs {b:.4f}s"
        )

    def test_collecting_overhead_bounded(self):
        trace = get_app("cg").trace(nranks=4).trace
        machine = MachineConfig(bandwidth_mbps=250.0)
        simulate(trace, machine)  # warm

        def best_of(k, factory):
            best = float("inf")
            for _ in range(k):
                t0 = time.perf_counter()
                simulate(trace, machine, insight=factory())
                best = min(best, time.perf_counter() - t0)
            return best

        off = best_of(3, lambda: None)
        on = best_of(3, InsightCollector)
        assert on < off * 1.5 + 0.05, (
            f"collecting replay {on:.4f}s vs disabled {off:.4f}s"
        )


# ---------------------------------------------------------------------- #
# classify_wait unit behavior
# ---------------------------------------------------------------------- #
class TestClassify:
    def _transfer(self, **times):
        from repro.dimemas.network import Transfer
        tr = Transfer(src=1, dst=0, size=1000)
        for k, v in times.items():
            setattr(tr, k, v)
        if tr.arrival_time is not None:
            tr.arrived = True
        return tr

    def test_segments_cover_interval(self):
        tr = self._transfer(send_time=2.0, ready_time=3.0, start_time=4.0,
                            arrival_time=6.0)
        segs = classify_wait("Waiting a message", 0.0, 6.0, (tr,), {}, 0)
        assert segs[0].t0 == 0.0 and segs[-1].t1 == 6.0
        for a, b in zip(segs, segs[1:]):
            assert a.t1 == b.t0
        by_cause = {s.cause: s.span for s in segs}
        assert by_cause["late_sender"] == pytest.approx(2.0)
        assert by_cause["dependency_chain"] == pytest.approx(1.0)
        assert by_cause["bus_contention"] == pytest.approx(1.0)
        assert by_cause["transfer"] == pytest.approx(2.0)

    def test_queue_cause_lookup(self):
        tr = self._transfer(send_time=0.0, ready_time=1.0, start_time=2.0,
                            arrival_time=3.0)
        segs = classify_wait("Waiting a message", 0.0, 3.0, (tr,),
                             {id(tr): "endpoint_port"}, 0)
        assert {s.cause for s in segs} >= {"endpoint_port"}

    def test_send_side_block_has_no_late_sender(self):
        tr = self._transfer(send_time=0.0, ready_time=2.0, start_time=2.0,
                            arrival_time=3.0)
        segs = classify_wait("Send", 0.0, 3.0, (tr,), {}, 1)
        causes = {s.cause for s in segs}
        assert "late_sender" not in causes
        assert "dependency_chain" in causes

    def test_collective_label(self):
        segs = classify_wait("Group communication", 1.0, 2.0, (), {}, 3)
        assert [s.cause for s in segs] == ["collective"]

    def test_unresolved_without_transfer(self):
        segs = classify_wait("Waiting a message", 0.0, 1.0, (), {}, 0)
        assert [s.cause for s in segs] == ["unresolved"]

    def test_cut_points_clamped_into_interval(self):
        """Transfer timestamps before t0 / after t1 never leak segments
        outside the blocked interval."""
        tr = self._transfer(send_time=-5.0, ready_time=-1.0,
                            start_time=0.5, arrival_time=9.0)
        segs = classify_wait("Waiting a message", 0.0, 1.0, (tr,), {}, 0)
        assert all(0.0 <= s.t0 <= s.t1 <= 1.0 for s in segs)
        assert sum(s.span for s in segs) == pytest.approx(1.0)

    def test_cause_vocabulary_closed(self):
        assert set(CAUSES) == {
            "late_sender", "dependency_chain", "bus_contention",
            "injection_port", "endpoint_port", "transfer", "perturbation",
            "collective", "unresolved",
        }
        seg = WaitSegment(0, "transfer", 0.0, 1.0, "Send")
        assert seg.span == 1.0


# ---------------------------------------------------------------------- #
# Scorecards and the attainable bound
# ---------------------------------------------------------------------- #
class TestScorecard:
    def test_ideal_pattern_bound(self):
        from repro.core.patterns import ConsumptionStats, ProductionStats
        p = ProductionStats(first_element=0.0, quarter=0.25, half=0.5,
                            whole=1.0)
        c = ConsumptionStats(nothing=0.0, quarter=0.25, half=0.5)
        # Windows: i=1..3 give 0.75 each, i=4 gives 0.5 (consumption
        # curve is only sampled up to x=0.5 and clamps beyond).
        assert attainable_overlap_bound(p, c, chunks=4) == pytest.approx(
            0.6875, abs=1e-9)

    def test_hostile_pattern_bound_near_zero(self):
        from repro.core.patterns import ConsumptionStats, ProductionStats
        # Everything produced at the very end, needed immediately.
        p = ProductionStats(first_element=1.0, quarter=1.0, half=1.0,
                            whole=1.0)
        c = ConsumptionStats(nothing=0.0, quarter=0.0, half=0.0)
        assert attainable_overlap_bound(p, c, chunks=4) == pytest.approx(
            0.0, abs=1e-9)

    def test_nan_without_patterns(self):
        from repro.core.patterns import ConsumptionStats, ProductionStats
        p = ProductionStats(*([math.nan] * 4))
        c = ConsumptionStats(*([math.nan] * 3))
        assert math.isnan(attainable_overlap_bound(p, c))

    def test_paper_ranking_cg_over_bt_over_sweep3d(self):
        """The qualitative §V ranking from measured skeleton patterns:
        CG pattern-friendly >> BT > Sweep3D pattern-hostile."""
        bounds = {}
        for app in ("cg", "bt", "sweep3d"):
            trace = get_app(app).trace(nranks=8).trace
            machine = MachineConfig.paper_testbed(app)
            base = simulate(trace, machine)
            real, _ = overlap_transform(trace, OverlapConfig(chunks=4))
            over = simulate(real, machine)
            bounds[app] = scorecard(trace, base, over).attainable_bound
        assert bounds["cg"] > bounds["bt"] > bounds["sweep3d"]
        assert bounds["cg"] > 0.5
        assert bounds["sweep3d"] < 0.1


# ---------------------------------------------------------------------- #
# The differential explainer
# ---------------------------------------------------------------------- #
class TestExplain:
    @pytest.fixture(scope="class")
    def cg_explanation(self):
        trace = get_app("cg").trace(nranks=8).trace
        real, _ = overlap_transform(trace, OverlapConfig(chunks=4))
        ideal, _ = ideal_transform(trace, chunks=4)
        return explain_traces(
            {"original": trace, "real": real, "ideal": ideal},
            machine=MachineConfig.paper_testbed("cg"), app="cg",
        )

    def test_triple_analyzed(self, cg_explanation):
        assert set(cg_explanation.results) == {"original", "real", "ideal"}
        assert cg_explanation.speedup_real > 1.0
        assert cg_explanation.verdict

    def test_cg_verdict_names_pattern_enabled_overlap(self, cg_explanation):
        assert "gains" in cg_explanation.verdict
        sc = cg_explanation.scorecards["real"]
        assert sc.attainable_bound > 0.5

    def test_sweep3d_verdict_names_structural_blocking(self):
        trace = get_app("sweep3d").trace(nranks=8).trace
        real, _ = overlap_transform(trace, OverlapConfig(chunks=4))
        expl = explain_traces(
            {"original": trace, "real": real},
            machine=MachineConfig.paper_testbed("sweep3d"), app="sweep3d",
        )
        assert expl.speedup_real < 1.05
        assert "cannot remove" in expl.verdict
        assert expl.dominant_residual() in ("late_sender",
                                            "dependency_chain")

    def test_renderers(self, cg_explanation):
        text = render_text(cg_explanation)
        assert "wait attribution" in text
        assert "verdict:" in text
        html = render_html(cg_explanation)
        assert html.startswith("<!doctype html>")
        assert "Overlap scorecard" in html
        assert "<svg" in html  # embedded timelines

    def test_json_schema_valid(self, cg_explanation, tmp_path):
        doc = to_json(cg_explanation)
        # Round-trip through real JSON so NaN leakage would be caught.
        doc = json.loads(json.dumps(doc))
        schema = json.loads(
            (Path(__file__).resolve().parent.parent / "docs" / "schema"
             / "repro-explain.schema.json").read_text())
        assert validate(doc, schema) == []

    def test_requires_original(self):
        with pytest.raises(ValueError, match="original"):
            explain_traces({"real": _ping_pong()})

    def test_perfetto_overlay_tracks(self, cg_explanation, tmp_path):
        from repro.obs.export import insight_to_chrome
        tracks = [
            (v, cg_explanation.attribution[v],
             cg_explanation.collectors.get(v))
            for v in ("original", "real")
        ]
        doc = insight_to_chrome(tracks)
        events = doc["traceEvents"]
        cause_names = {e["name"] for e in events if e["ph"] == "X"}
        assert cause_names <= set(CAUSES)
        assert any(e["ph"] == "C" for e in events)  # occupancy counters
        pids = {e["pid"] for e in events}
        assert len(pids) == 2  # one synthetic process per variant


# ---------------------------------------------------------------------- #
# CriticalPathError (satellite: no silent truncation)
# ---------------------------------------------------------------------- #
class TestCriticalPathError:
    def test_exhausted_hops_raise(self):
        from repro.paraver.critical import CriticalPathError, critical_path
        trace = get_app("cg").trace(nranks=8).trace
        res = simulate(trace, MachineConfig.paper_testbed("cg"))
        with pytest.raises(CriticalPathError) as exc_info:
            critical_path(res, max_hops=1)
        exc = exc_info.value
        assert exc.max_hops == 1
        assert exc.path.hops == 1
        assert exc.path.length > 0

    def test_sufficient_hops_do_not_raise(self):
        from repro.paraver.critical import critical_path
        res = simulate(_ping_pong(), MachineConfig())
        path = critical_path(res)
        assert path.length > 0

    def test_explainer_surfaces_truncation_as_warning(self):
        trace = get_app("cg").trace(nranks=4).trace
        real, _ = overlap_transform(trace, OverlapConfig(chunks=4))
        expl = explain_traces(
            {"original": trace, "real": real},
            machine=MachineConfig.paper_testbed("cg"),
            max_events=None, max_sim_time=None,
        )
        # Force the truncation path through the helper directly.
        import functools

        import repro.paraver.critical as crit
        from repro.insight.explain import _critical_breakdown

        warnings: list[str] = []
        res = expl.results["original"]
        orig = crit.critical_path
        try:
            crit.critical_path = functools.partial(orig, max_hops=1)
            bd = _critical_breakdown(res, warnings, "original")
        finally:
            crit.critical_path = orig
        assert bd == {}
        assert warnings and "exhausted" in warnings[0]


# ---------------------------------------------------------------------- #
# Degenerate-result guards (satellite: paraver.stats)
# ---------------------------------------------------------------------- #
class TestStatsGuards:
    def test_empty_result(self):
        from repro.dimemas.results import SimResult
        from repro.paraver.stats import (
            comm_stats, profile_table, state_matrix,
        )
        empty = SimResult(nranks=0, duration=0.0, rank_end=[], states=[],
                          messages=[], events=[])
        mat, names = state_matrix(empty)
        assert mat.shape == (0, len(names))
        table = profile_table(empty)
        assert "all" in table  # totals row rendered, no div-by-zero
        cs = comm_stats(empty)
        assert cs.count == 0 and cs.mean_flight == 0.0

    def test_ranks_without_state_lists(self):
        from repro.dimemas.results import SimResult
        from repro.paraver.stats import profile_table, state_matrix
        res = SimResult(nranks=3, duration=1.0, rank_end=[1.0, 1.0, 1.0],
                        states=[[("Running", 0.0, 1.0)]],  # 1 of 3 ranks
                        messages=[], events=[])
        mat, _ = state_matrix(res)
        assert mat.shape[0] == 3
        assert mat[1].sum() == 0.0 and mat[2].sum() == 0.0
        assert "all" in profile_table(res)

    def test_communication_free_result(self):
        ts = TraceSet([ProcessTrace(0, [CpuBurst(duration=1e-3)]),
                       ProcessTrace(1, [CpuBurst(duration=2e-3)])])
        res = simulate(ts, MachineConfig())
        from repro.paraver.stats import comm_stats, profile_table
        assert comm_stats(res).count == 0
        assert "100.00%" in profile_table(res)
        res2, col = collect(ts, MachineConfig())
        attr = attribute(res2, col)
        assert attr.total_wait == 0.0
        assert attr.dominant_cause() == "none"
