"""Fault injection and deadlock post-mortems.

The contract under test: a seeded injector perturbs exactly one site
deterministically, and every structurally-broken mutant is *diagnosed*
— flagged by validation with the right location, or replayed into a
:class:`DeadlockError` whose report names the blocked ranks — never a
hang, a KeyError, or a silently wrong number.
"""

import pytest

from repro import faults
from repro.dimemas import (
    DeadlockError,
    MachineConfig,
    SimulationTimeout,
    simulate,
)
from repro.trace import dim
from repro.trace.validate import validate
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app

MACHINE = MachineConfig(bandwidth_mbps=100.0, latency=10e-6, buses=4)

#: Generous event budget: replay of the tiny pipeline needs ~40 events,
#: so hitting this means a runaway, not a slow simulation.
EVENT_BUDGET = 200_000


@pytest.fixture(scope="module")
def trace():
    return run_traced(make_pipeline_app(), 4, mips=1000.0).trace


def diagnose(mutant):
    """Replay a mutant; returns ('ok', result) or ('deadlock', report)."""
    try:
        return "ok", simulate(mutant, MACHINE, max_events=EVENT_BUDGET)
    except DeadlockError as exc:
        return "deadlock", exc.report


class TestInjectorContract:
    @pytest.mark.parametrize("kind", sorted(faults.FAULT_KINDS))
    def test_same_seed_same_mutant(self, trace, kind):
        m1, f1 = faults.inject(trace, kind, seed=11)
        m2, f2 = faults.inject(trace, kind, seed=11)
        assert dim.dumps(m1) == dim.dumps(m2)
        assert f1 == f2

    @pytest.mark.parametrize("kind", sorted(faults.FAULT_KINDS))
    def test_original_never_mutated(self, trace, kind):
        before = dim.dumps(trace)
        faults.inject(trace, kind, seed=3)
        assert dim.dumps(trace) == before

    def test_seeds_explore_different_sites(self, trace):
        sites = {
            (f.rank, f.index)
            for seed in range(16)
            for _, f in [faults.inject(trace, "drop", seed=seed)]
        }
        assert len(sites) > 1

    def test_unknown_kind_raises(self, trace):
        with pytest.raises(KeyError, match="unknown fault kind"):
            faults.inject(trace, "cosmic_ray")

    def test_uninjectable_raises(self):
        # a communication-free trace offers no site to drop
        silent = run_traced(lambda comm: comm.compute(1000), 2,
                            mips=1000.0).trace
        with pytest.raises(faults.FaultInjectionError):
            faults.drop_record(silent)

    def test_fault_describe_names_location(self, trace):
        _, f = faults.inject(trace, "drop", seed=5)
        text = f.describe()
        assert f"rank={f.rank}" in text and f"record={f.index}" in text


class TestDiagnosis:
    """Every mutant is caught: validation blames the right rank, and
    replay either completes or produces a structured post-mortem."""

    @pytest.mark.parametrize("kind", ["drop", "truncate"])
    def test_missing_records_deadlock_with_blame(self, trace, kind):
        mutant, fault = faults.inject(trace, kind, seed=7)
        assert not validate(mutant).ok
        status, report = diagnose(mutant)
        assert status == "deadlock"
        assert report.blocked_ranks  # somebody is named
        # the orphaned partner blocks; the perturbed rank is either the
        # blocked one or the peer of a blocked op
        involved = set(report.blocked_ranks) | {
            b.peer for b in report.blocked if b.peer is not None
        }
        assert fault.rank in involved
        assert report.unmatched  # lenient matcher reported the orphan

    @pytest.mark.parametrize("kind", ["duplicate", "corrupt_size"])
    def test_mismatches_flagged_by_validation(self, trace, kind):
        mutant, fault = faults.inject(trace, kind, seed=7)
        rep = validate(mutant)
        assert not rep.ok
        located = [
            i for i in rep.issues
            if i.rank == fault.rank or f"={fault.rank}," in i or "key (" in i
        ]
        assert located, rep.issues
        # replay must terminate either way (eager orphans complete)
        status, _ = diagnose(mutant)
        assert status in ("ok", "deadlock")

    def test_corrupt_size_blames_exact_record(self, trace):
        mutant, fault = faults.inject(trace, "corrupt_size", seed=7)
        rep = validate(mutant)
        assert any(
            i.rank == fault.rank and i.record == fault.index
            for i in rep.issues
        ), rep.issues

    def test_skew_stays_valid_and_replayable(self, trace):
        mutant, fault = faults.inject(trace, "skew", seed=7)
        assert validate(mutant).ok
        status, result = diagnose(mutant)
        assert status == "ok"
        base = simulate(trace, MACHINE).duration
        assert result.duration != base  # the skew is visible in timing
        assert fault.details["factor"] != 1.0

    def test_reorder_terminates(self, trace):
        mutant, _ = faults.inject(trace, "reorder", seed=7)
        status, _ = diagnose(mutant)
        assert status in ("ok", "deadlock")


class TestPostmortemStructure:
    def _rendezvous_cycle(self):
        """Two ranks that Send to each other first: a classic deadlock
        once the messages are too big for the eager protocol."""
        import numpy as np

        def app(comm):
            buf = np.zeros(4096)
            other = 1 - comm.rank
            comm.send(buf, other, tag=0)
            comm.Recv(buf, other, tag=0)

        return run_traced(app, 2, mips=1000.0).trace

    def test_cycle_named_in_report(self):
        trace = self._rendezvous_cycle()
        machine = MachineConfig(eager_threshold=0)
        with pytest.raises(DeadlockError) as ei:
            simulate(trace, machine, max_events=EVENT_BUDGET)
        report = ei.value.report
        assert sorted(report.blocked_ranks) == [0, 1]
        assert report.cycle and report.cycle[0] == report.cycle[-1]
        assert set(report.cycle) == {0, 1}
        text = report.render()
        assert "wait cycle" in text and "rank 0" in text and "rank 1" in text
        # message compatible with historical matcher ("stalled")
        assert "stalled" in str(ei.value)

    def test_report_to_dict_roundtrips_structure(self):
        trace = self._rendezvous_cycle()
        with pytest.raises(DeadlockError) as ei:
            simulate(trace, MachineConfig(eager_threshold=0),
                     max_events=EVENT_BUDGET)
        d = ei.value.report.to_dict()
        assert d["blocked"] and d["cycle"]
        assert {b["rank"] for b in d["blocked"]} == {0, 1}

    def test_max_events_watchdog(self, trace):
        with pytest.raises(SimulationTimeout) as ei:
            simulate(trace, MACHINE, max_events=2)
        assert ei.value.reason == "max_events"
        assert ei.value.report.events_executed <= 2

    def test_max_sim_time_watchdog(self, trace):
        machine = MachineConfig(
            bandwidth_mbps=100.0, latency=10e-6, buses=4, max_sim_time=1e-9,
        )
        with pytest.raises(SimulationTimeout) as ei:
            simulate(trace, machine)
        assert ei.value.reason == "max_sim_time"

    def test_watchdog_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(max_events=0)
        with pytest.raises(ValueError):
            MachineConfig(max_sim_time=-1.0)

    def test_generous_budgets_change_nothing(self, trace):
        base = simulate(trace, MACHINE)
        guarded = simulate(trace, MACHINE, max_events=10**9,
                           max_sim_time=10**6)
        assert guarded.duration == base.duration
