"""Tests of static message matching and comparison metrics."""

import pytest

from repro.core.matching import MessagePair, UnmatchedMessageError, match_messages
from repro.core.metrics import Comparison, improvement_percent, speedup
from repro.trace.records import (
    IRecv,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)


def two_rank(recs0, recs1) -> TraceSet:
    return TraceSet([ProcessTrace(0, recs0), ProcessTrace(1, recs1)])


class TestMatching:
    def test_simple_pair(self):
        ts = two_rank([Send(peer=1, tag=3, size=8)], [Recv(peer=0, tag=3, size=8)])
        pairs = match_messages(ts)
        assert pairs == [MessagePair(src=0, send_index=0, dst=1, recv_index=0,
                                     size=8, channel=0, tag=3, sub=0)]

    def test_fifo_order_on_same_key(self):
        ts = two_rank(
            [Send(peer=1, tag=0, size=8), Send(peer=1, tag=0, size=16)],
            [Recv(peer=0, tag=0, size=8), Recv(peer=0, tag=0, size=16)],
        )
        p = match_messages(ts)
        assert [(x.send_index, x.recv_index, x.size) for x in p] == [
            (0, 0, 8), (1, 1, 16)]

    def test_nonblocking_records_match(self):
        ts = two_rank(
            [ISend(peer=1, tag=0, size=8, request=1), Wait((1,))],
            [IRecv(peer=0, tag=0, size=8, request=2), Wait((2,))],
        )
        assert len(match_messages(ts)) == 1

    def test_interleaved_keys(self):
        ts = two_rank(
            [Send(peer=1, tag=1, size=8), Send(peer=1, tag=2, size=24)],
            [Recv(peer=0, tag=2, size=24), Recv(peer=0, tag=1, size=8)],
        )
        pairs = {(p.tag, p.recv_index) for p in match_messages(ts)}
        assert pairs == {(1, 1), (2, 0)}

    def test_unmatched_raises_in_strict(self):
        ts = two_rank([Send(peer=1, tag=0, size=8)], [])
        with pytest.raises(UnmatchedMessageError):
            match_messages(ts)

    def test_unmatched_dropped_when_lenient(self):
        ts = two_rank([Send(peer=1, tag=0, size=8)], [])
        assert match_messages(ts, strict=False) == []

    def test_self_messages(self):
        ts = TraceSet([ProcessTrace(0, [
            Send(peer=0, tag=0, size=8), Recv(peer=0, tag=0, size=8)])])
        pairs = match_messages(ts)
        assert pairs[0].src == pairs[0].dst == 0

    def test_ordering_of_result(self, pipeline_trace):
        pairs = match_messages(pipeline_trace)
        keys = [(p.src, p.send_index) for p in pairs]
        assert keys == sorted(keys)


class TestMetrics:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_improvement_percent(self):
        assert improvement_percent(2.0, 1.5) == pytest.approx(25.0)

    def test_comparison(self):
        c = Comparison(t_original=1.0, t_overlapped=0.92)
        assert c.speedup == pytest.approx(1.0 / 0.92)
        assert c.improvement_percent == pytest.approx(8.0)
        assert c.wins
        assert "speedup" in str(c)

    def test_comparison_loss(self):
        assert not Comparison(1.0, 1.1).wins
