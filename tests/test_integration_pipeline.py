"""Integration + property-based tests across the full pipeline.

These exercise the whole chain — simulated application, tracer,
overlap transformation, replay, visualization — and check the
invariants the methodology rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import HaloExchange2D, PingPong, Pipeline1D, ReduceLoop
from repro.core.ideal import ideal_transform
from repro.core.transform import overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.trace import dim
from repro.trace.records import ISend, Send
from repro.trace.validate import validate

CFG = MachineConfig(bandwidth_mbps=100.0, latency=8e-6, buses=4)


def total_bytes_per_pair(trace):
    out = {}
    for p in trace:
        for r in p:
            if isinstance(r, (Send, ISend)):
                key = (p.rank, r.peer)
                out[key] = out.get(key, 0) + r.size
    return out


@pytest.mark.parametrize("app", [
    Pipeline1D(elements=128, work=400_000, iterations=3),
    HaloExchange2D(edge_elements=64, work=300_000, iterations=2),
    ReduceLoop(work=200_000, iterations=4),
    PingPong(elements=64, rounds=3),
])
class TestSyntheticAppsFullPipeline:
    def test_all_variants_replay(self, app):
        tr = app.trace(nranks=app.default_nranks).trace
        validate(tr, strict=True)
        base = simulate(tr, CFG).duration
        for transform in (overlap_transform, ideal_transform):
            out = transform(tr)[0]
            validate(out, strict=True)
            d = simulate(out, CFG).duration
            assert 0 < d <= base * 1.5

    def test_transform_preserves_bytes(self, app):
        tr = app.trace(nranks=app.default_nranks).trace
        out, _ = overlap_transform(tr)
        assert total_bytes_per_pair(out) == total_bytes_per_pair(tr)

    def test_transformed_trace_serializes(self, app):
        tr = app.trace(nranks=app.default_nranks).trace
        out, _ = overlap_transform(tr)
        assert dim.dumps(dim.loads(dim.dumps(out))) == dim.dumps(out)


class TestMethodologyInvariants:
    def test_overlap_isolates_computation(self, pipeline_trace):
        """Paper §VI: the simulation measures the isolated impact of
        overlap — total computation must be bit-identical."""
        for transform in (overlap_transform, ideal_transform):
            out = transform(pipeline_trace)[0]
            for orig, new in zip(pipeline_trace, out):
                assert new.virtual_duration == pytest.approx(
                    orig.virtual_duration, rel=1e-12)

    def test_replay_insensitive_to_scheduling_of_tracer(self):
        """Trace-driven methodology: tracing twice and replaying gives
        identical reconstructions (determinism end to end)."""
        app = Pipeline1D(elements=64, work=100_000, iterations=2)
        r1 = simulate(app.trace(nranks=4).trace, CFG)
        r2 = simulate(app.trace(nranks=4).trace, CFG)
        assert r1.duration == r2.duration

    def test_bandwidth_monotonicity(self):
        app = HaloExchange2D(edge_elements=256, work=200_000, iterations=2)
        tr = app.trace(nranks=4).trace
        durs = [simulate(tr, CFG.with_bandwidth(bw)).duration
                for bw in (10, 50, 250, 1000)]
        assert all(a >= b - 1e-12 for a, b in zip(durs, durs[1:]))

    def test_latency_monotonicity(self):
        from dataclasses import replace
        app = Pipeline1D(elements=64, work=100_000, iterations=2)
        tr = app.trace(nranks=4).trace
        durs = [simulate(tr, replace(CFG, latency=lat)).duration
                for lat in (1e-6, 10e-6, 100e-6)]
        assert durs[0] <= durs[1] <= durs[2]

    def test_linear_producer_real_matches_ideal(self):
        """When the measured pattern is already ideal, the real and
        ideal overlapped traces must perform identically (within chunk
        rounding)."""
        app = Pipeline1D(
            elements=256, work=500_000, iterations=3,
            production_anchors=[(0.0, 0.0), (1.0, 1.0)],
            consumption_anchors=[(0.0, 0.0), (1.0, 1.0)],
        )
        tr = app.trace(nranks=4).trace
        real = simulate(overlap_transform(tr)[0], CFG).duration
        ideal = simulate(ideal_transform(tr)[0], CFG).duration
        assert real == pytest.approx(ideal, rel=0.05)

    def test_late_producer_gains_nothing_real(self):
        app = Pipeline1D(
            elements=256, work=500_000, iterations=3,
            production_anchors=[(0.0, 1.0), (1.0, 1.0)],
            consumption_anchors=[(0.0, 0.0), (1.0, 0.0)],
        )
        tr = app.trace(nranks=4).trace
        base = simulate(tr, CFG).duration
        real = simulate(overlap_transform(tr)[0], CFG).duration
        assert real == pytest.approx(base, rel=0.05)

    def test_chunking_enables_wavefront_pipelining(self):
        """More chunks -> finer pipeline -> ideal time non-increasing
        until latency overhead dominates (the paper's Sweep3D effect)."""
        app = Pipeline1D(elements=1024, work=2_000_000, iterations=2)
        tr = app.trace(nranks=6).trace
        d1 = simulate(ideal_transform(tr, chunks=1)[0], CFG).duration
        d4 = simulate(ideal_transform(tr, chunks=4)[0], CFG).duration
        assert d4 <= d1 * 1.001


@given(
    nranks=st.integers(2, 5),
    elements=st.integers(1, 300),
    work=st.integers(0, 500_000),
    iterations=st.integers(1, 4),
    chunks=st.integers(1, 8),
    prod_start=st.floats(0.0, 1.0),
    cons_end=st.floats(0.0, 1.0),
)
@settings(max_examples=30, deadline=None)
def test_property_random_pipelines_survive_the_pipeline(
        nranks, elements, work, iterations, chunks, prod_start, cons_end):
    """Fuzz the whole chain: any pipeline configuration must trace,
    transform (both schedules), validate, serialize, and replay."""
    app = Pipeline1D(
        elements=elements, work=work, iterations=iterations,
        production_anchors=[(0.0, prod_start), (1.0, 1.0)],
        consumption_anchors=[(0.0, 0.0), (1.0, cons_end)],
    )
    tr = app.trace(nranks=nranks).trace
    validate(tr, strict=True)
    base = simulate(tr, CFG).duration
    for transform, kw in ((overlap_transform, dict(chunks=chunks)),
                          (ideal_transform, dict(chunks=chunks))):
        out, stats = transform(tr, **kw)
        validate(out, strict=True)
        assert stats.messages_total >= stats.messages_transformed
        dur = simulate(out, CFG).duration
        assert dur >= 0
        # compute conservation (the rebuild may drop sub-femtosecond
        # burst slivers at split points; bound: ~1e-15 s per insertion)
        slack = 1e-15 * max(out.total_records(), 1)
        assert out.total_virtual_compute() == pytest.approx(
            tr.total_virtual_compute(), rel=1e-6, abs=slack)
    assert base >= 0
