"""Tests of the application pool and its pattern calibration."""

import numpy as np
import pytest

from repro.apps import APPS, get_app, grid_2d, grid_3d
from repro.apps.patterns import (
    anchored_times,
    burst_touches,
    consumption_batches,
    production_batches,
    shift_anchors,
)
from repro.core.patterns import consumption_table, production_table
from repro.experiments.tables import PAPER_CONSUMPTION, PAPER_PRODUCTION
from repro.trace import dim
from repro.trace.validate import validate

SMALL = 8  # ranks for smoke runs


class TestGrids:
    @pytest.mark.parametrize("n,expect", [(1, (1, 1)), (4, (2, 2)),
                                          (6, (2, 3)), (64, (8, 8)),
                                          (7, (1, 7))])
    def test_grid_2d(self, n, expect):
        assert grid_2d(n) == expect

    def test_grid_3d_covers(self):
        for n in (1, 8, 12, 27, 64):
            px, py, pz = grid_3d(n)
            assert px * py * pz == n


class TestPatternGenerators:
    def test_anchored_times_hits_anchors(self):
        t = anchored_times(101, [(0.0, 0.1), (0.5, 0.6), (1.0, 0.9)])
        assert t[0] == pytest.approx(0.1)
        assert t[50] == pytest.approx(0.6)
        assert t[-1] == pytest.approx(0.9)
        assert (np.diff(t) >= 0).all()

    def test_anchored_times_single_element(self):
        assert anchored_times(1, [(0.0, 0.3), (1.0, 0.9)])[0] == pytest.approx(0.3)

    def test_anchored_times_validation(self):
        with pytest.raises(ValueError):
            anchored_times(10, [(0.0, 0.9), (1.0, 0.1)])
        with pytest.raises(ValueError):
            anchored_times(10, [(0.0, 0.5), (1.0, 1.5)])
        with pytest.raises(ValueError):
            anchored_times(0, [(0.0, 0.0), (1.0, 1.0)])

    def test_burst_touches(self):
        offs, at = burst_touches(5, 0.1368)
        assert offs.tolist() == [0, 1, 2, 3, 4]
        assert (at == 0.1368).all()

    def test_production_revisits_do_not_change_last_store(self):
        anchors = [(0.0, 0.6), (1.0, 0.9)]
        plain = production_batches(32, anchors, revisits=0)
        noisy = production_batches(32, anchors, revisits=3)
        assert len(noisy) == 4
        # all revisit passes land before the earliest final store
        final = plain[-1][1]
        for offs, at in noisy[:-1]:
            assert (at <= final.min() + 1e-12).all()

    def test_consumption_rereads_after_first_load(self):
        anchors = [(0.0, 0.1), (1.0, 0.2)]
        batches = consumption_batches(16, anchors, rereads=2)
        first = batches[0][1]
        for offs, at in batches[1:]:
            assert (at >= first.max() - 1e-12).all()

    def test_shift_anchors_clipped(self):
        out = shift_anchors([(0.0, 0.95), (1.0, 0.999)], 0.1)
        assert out[1][1] == 1.0
        out2 = shift_anchors([(0.0, 0.05)], -0.1)
        assert out2[0][1] == 0.0


@pytest.mark.parametrize("name", sorted(APPS))
class TestPoolApps:
    def test_trace_validates(self, name):
        run = get_app(name).trace(nranks=SMALL)
        validate(run.trace, strict=True)

    def test_deterministic(self, name):
        a = dim.dumps(get_app(name).trace(nranks=SMALL).trace)
        b = dim.dumps(get_app(name).trace(nranks=SMALL).trace)
        assert a == b

    def test_single_rank_degenerates(self, name):
        run = get_app(name).trace(nranks=1)
        assert run.trace.nranks == 1

    def test_params_recorded_in_meta(self, name):
        run = get_app(name).trace(nranks=SMALL)
        assert run.trace.meta["app"] == name
        assert isinstance(run.trace.meta["params"], dict)

    def test_invalid_params_rejected(self, name):
        cls = APPS[name]
        first_param = next(iter(get_app(name).params()))
        with pytest.raises((ValueError, TypeError)):
            cls(**{first_param: 0})


class TestPatternCalibration:
    """Measured Table II rows must approximate the paper's values."""

    @pytest.mark.parametrize("name", ["bt", "cg", "sweep3d", "pop", "specfem3d"])
    def test_production_row(self, name):
        tr = get_app(name).trace(nranks=16).trace
        row = production_table(tr, channel=0)
        paper = PAPER_PRODUCTION[name]
        assert row.first_element == pytest.approx(paper.first_element, abs=0.05)
        assert row.whole == pytest.approx(paper.whole, abs=0.05)

    @pytest.mark.parametrize("name", ["bt", "specfem3d"])
    def test_consumption_independent_work(self, name):
        """The 'nothing' column — how much independent work exists."""
        tr = get_app(name).trace(nranks=16).trace
        row = consumption_table(tr, channel=0)
        paper = PAPER_CONSUMPTION[name]
        # consumption intervals span beyond the consuming burst, so the
        # measured fraction is a scaled-down version of the anchor;
        # the qualitative distinction (BT ~14% vs specfem ~0%) must hold.
        if paper.nothing > 0.05:
            assert row.nothing > 0.02
        else:
            assert row.nothing < 0.02

    def test_cg_production_is_near_linear(self):
        tr = get_app("cg").trace(nranks=16).trace
        row = production_table(tr, channel=0)
        assert row.first_element < 0.15
        assert 0.15 < row.quarter < 0.45
        assert 0.35 < row.half < 0.65

    def test_alya_scalar_reductions_dominate(self):
        tr = get_app("alya").trace(nranks=8).trace
        from repro.trace.records import CHANNEL_COLLECTIVE, ISend, Send
        coll = [r for p in tr for r in p
                if isinstance(r, (Send, ISend)) and r.channel == CHANNEL_COLLECTIVE]
        app = [r for p in tr for r in p
               if isinstance(r, (Send, ISend)) and r.channel == 0]
        assert len(coll) > len(app)

    def test_sweep3d_buffer_is_about_600_elements_at_64(self):
        """Figure 5(a): 'the communicated buffer has 600 elements'."""
        app = get_app("sweep3d")
        run = app.trace(nranks=64)
        assert run.results[0]["face_elements"] == 600
