"""Property-based integrity tests (satellite of the audit subsystem).

Two contracts, explored with hypothesis instead of hand-picked cases:

* every *valid* synthetic trace — random programs over random rank
  counts, built so their messages match by construction — replays
  audit-clean at the ``full`` level with ``strict`` on;
* every seeded fault injector produces a mutant whose certification
  yields at least one violation attributed to the perturbed rank
  (``reorder`` swaps can be semantically benign, which
  :func:`hypothesis.assume` skips past).
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.audit.auditor import AuditConfig
from repro.audit.certify import certify_trace
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app

#: Small deterministic platform; the event budget turns any runaway
#: replay of a broken mutant into a watchdog violation, never a hang.
MACHINE = MachineConfig(bandwidth_mbps=100.0, latency=10e-6, buses=4,
                        max_events=200_000)

_SETTINGS = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# Valid synthetic traces: random programs that match by construction.
# --------------------------------------------------------------------------- #

def _ops(nranks: int):
    """One program step: a matched message, a compute burst, a barrier."""
    msg = st.tuples(
        st.just("msg"),
        st.integers(0, nranks - 1),          # src
        st.integers(1, nranks - 1),          # dst = (src + off) % nranks
        st.integers(1, 1000),                # elements (small => eager)
        st.integers(0, 3),                   # tag
        st.sampled_from(["send", "iwait", "waitall"]),
    )
    compute = st.tuples(st.just("compute"), st.integers(0, nranks - 1),
                        st.integers(100, 50_000))
    barrier = st.tuples(st.just("barrier"))
    return st.one_of(msg, compute, barrier)


programs = st.integers(2, 4).flatmap(
    lambda n: st.tuples(st.just(n), st.lists(_ops(n), min_size=1,
                                             max_size=10))
)


def _make_app(program):
    """Rank function executing its share of a globally-ordered program.

    Every rank walks the same op list, so each message's endpoints
    appear in the same global order on both sides; with eager sends
    that construction is deadlock-free by induction on the op index.
    """

    def app(comm):
        r = comm.rank
        for op in program:
            if op[0] == "msg":
                _, src, off, elements, tag, mode = op
                dst = (src + off) % comm.size
                if r == src:
                    payload = np.zeros(elements)
                    if mode == "send":
                        comm.send(payload, dst, tag=tag)
                    elif mode == "iwait":
                        comm.wait(comm.isend(payload, dst, tag=tag))
                    else:
                        comm.waitall([comm.isend(payload, dst, tag=tag)])
                elif r == dst:
                    if mode == "send":
                        comm.recv(source=src, tag=tag)
                    elif mode == "iwait":
                        comm.wait(comm.irecv(source=src, tag=tag))
                    else:
                        comm.waitall([comm.irecv(source=src, tag=tag)])
            elif op[0] == "compute":
                if r == op[1]:
                    comm.compute(op[2])
            else:
                comm.barrier()
        return r

    return app


@given(programs)
@_SETTINGS
def test_valid_synthetic_traces_audit_clean(prog):
    nranks, program = prog
    trace = run_traced(_make_app(program), nranks, mips=1000.0).trace
    cfg = AuditConfig(level="full", strict=True)
    simulate(trace, MACHINE, audit=cfg)  # strict: violations would raise
    assert cfg.report is not None
    assert cfg.report.ok
    assert len(cfg.report.checks) == 7  # the complete full-level battery


# --------------------------------------------------------------------------- #
# Fault injectors: every perturbation is caught and attributed.
# --------------------------------------------------------------------------- #

@functools.lru_cache(maxsize=1)
def _base():
    """A 4-rank pipeline trace and its baseline replay (built once)."""
    trace = run_traced(make_pipeline_app(), 4, mips=1000.0).trace
    return trace, simulate(trace, MACHINE)


@pytest.mark.parametrize("kind", sorted(faults.FAULT_KINDS))
@given(seed=st.integers(0, 31))
@_SETTINGS
def test_injected_fault_yields_attributed_violation(kind, seed):
    trace, baseline = _base()
    mutant, fault = faults.inject(trace, kind, seed=seed)
    report = certify_trace(mutant, machine=MACHINE, level="full",
                           baseline=baseline)
    if kind == "reorder":
        # An adjacent swap can leave matching and timing untouched
        # (e.g. two identical sends); only the detectable seeds count.
        assume(not report.ok)
    assert not report.ok
    attributed = {r for v in report.violations for r in v.ranks}
    assert fault.rank in attributed, (
        f"{fault.describe()} not attributed; got "
        f"{[v.render() for v in report.violations]}"
    )
