"""The disabled-observability fast path stays near-zero cost.

The contract (docs/OBSERVABILITY.md): with collection off, every
instrumentation point costs one module-global check — no allocation,
no clock read — and the replay hot loop carries a single dead branch.
Wall-clock assertions use deliberately generous bounds so the tests
pin down the *shape* of the fast path (shared singleton, no sampling)
without becoming flaky on loaded CI machines.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.obs import spans as spans_mod


@pytest.fixture(autouse=True)
def _clean_tracer():
    spans_mod.disable()
    spans_mod.flush()
    yield
    spans_mod.disable()
    spans_mod.flush()


def _cg_trace(nranks=4):
    from repro.apps import get_app
    return get_app("cg").trace(nranks=nranks).trace


class TestDisabledShape:
    def test_disabled_span_is_shared_singleton(self):
        """No per-call allocation: every disabled span() is one object."""
        seen = {id(obs.span(f"n{i}", k=i)) for i in range(100)}
        assert seen == {id(spans_mod.NULL_SPAN)}

    def test_disabled_replay_samples_no_queue_depth(self):
        reg = obs.get_registry()
        h = reg.histogram("replay.queue_depth")
        before = h.count
        simulate(_cg_trace(), MachineConfig(bandwidth_mbps=250.0))
        assert h.count == before  # sampler never attached

    def test_enabled_replay_samples_queue_depth(self):
        reg = obs.get_registry()
        h = reg.histogram("replay.queue_depth")
        before = h.count
        obs.enable()
        simulate(_cg_trace(), MachineConfig(bandwidth_mbps=250.0))
        obs.disable()
        spans = {r.name: r for r in spans_mod.flush()}
        events = spans["replay.simulate"].attrs["events"]
        # Sampling is 1-in-256; only a big enough replay must observe.
        if events >= 512:
            assert h.count > before
        assert spans["replay.simulate"].attrs["sim_seconds"] > 0
        assert "replay.drain_queue" in spans


class TestDisabledCost:
    def test_disabled_span_call_is_cheap(self):
        """Best-of-5 mean under 3 us/call — an order of magnitude of
        headroom over the measured cost, tight enough to catch an
        accidental allocation or clock read sneaking into the path."""
        n = 20_000
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            for _ in range(n):
                obs.span("bench.stage")
            best = min(best, (time.perf_counter() - t0) / n)
        assert best < 3e-6, f"disabled span() costs {best * 1e9:.0f} ns"

    def test_disabled_replay_throughput_within_budget(self):
        """Replay with instrumentation compiled in but disabled runs at
        the same speed run-to-run (<2% systematic budget; the assertion
        allows generous noise).  Both runs exercise the identical code
        path, so a real regression would have to come from the obs
        hooks themselves — the run-to-run spread bounds their cost
        together with the machine noise."""
        trace = _cg_trace()
        machine = MachineConfig(bandwidth_mbps=250.0)
        simulate(trace, machine)  # warm plan memo + allocations

        def best_of(k):
            best = float("inf")
            for _ in range(k):
                t0 = time.perf_counter()
                simulate(trace, machine)
                best = min(best, time.perf_counter() - t0)
            return best

        a, b = best_of(3), best_of(3)
        assert abs(a - b) / max(a, b) < 0.25, (
            f"replay wall-clock unstable: {a:.4f}s vs {b:.4f}s"
        )

    def test_enabled_overhead_is_bounded(self):
        """Even with spans on, stage-granularity collection stays far
        from the replay's own cost (wide 1.5x tolerance)."""
        trace = _cg_trace()
        machine = MachineConfig(bandwidth_mbps=250.0)
        simulate(trace, machine)  # warm

        def best_of(k):
            best = float("inf")
            for _ in range(k):
                t0 = time.perf_counter()
                simulate(trace, machine)
                best = min(best, time.perf_counter() - t0)
            return best

        off = best_of(3)
        obs.enable()
        on = best_of(3)
        obs.disable()
        spans_mod.flush()
        assert on < off * 1.5 + 0.05, (
            f"enabled replay {on:.4f}s vs disabled {off:.4f}s"
        )
