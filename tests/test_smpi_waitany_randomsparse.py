"""Tests of waitany/testall and the RandomSparse fuzz application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.random_sparse import RandomSparse
from repro.core.ideal import ideal_transform
from repro.core.transform import overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.smpi import Runtime
from repro.trace.validate import validate

CFG = MachineConfig(bandwidth_mbps=100.0, latency=5e-6, buses=4)


class TestWaitany:
    def test_returns_first_completed(self):
        def main(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(1, tag=t) for t in (1, 2)]
                i, val = comm.waitany(reqs)
                j, val2 = comm.waitany([reqs[1 - i]])
                return [(i, val), (j, val2)]
            comm.send("second", 0, tag=2)
            comm.send("first", 0, tag=1)
        out = Runtime(2, main).run()[0]
        # tag=2 was sent first; its request completes; ties by index
        vals = {v for _, v in out}
        assert vals == {"first", "second"}

    def test_empty_rejected(self):
        from repro.smpi import RankFailedError
        def main(comm):
            comm.waitany([])
        with pytest.raises(RankFailedError):
            Runtime(1, main).run()

    def test_traced_waitany_validates(self):
        from repro.tracer import run_traced
        def main(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(1, tag=t) for t in (1, 2)]
                comm.waitany(reqs)
                comm.waitall([r for r in reqs if not r.done])
            else:
                comm.send(1, 0, tag=1)
                comm.send(2, 0, tag=2)
        tr = run_traced(main, 2).trace
        validate(tr, strict=True)
        assert simulate(tr, CFG).duration >= 0


class TestTestall:
    def test_polling_loop(self):
        def main(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(1, tag=t) for t in (1, 2)]
                assert not comm.testall(reqs)
                comm.send("go", 1)
                comm.recv(1, tag=9)  # yield; rank 1 makes progress
                assert comm.testall(reqs)
                return [r.value for r in reqs]
            comm.recv(0)
            comm.send("x", 0, tag=1)
            comm.send("y", 0, tag=2)
            comm.send(None, 0, tag=9)
        out = Runtime(2, main).run()
        assert out[0] == ["x", "y"]

    def test_traced_testall_validates(self):
        from repro.tracer import run_traced
        def main(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=1)
                comm.recv(1, tag=2)   # yields; rank 1 sends both messages
                assert comm.testall([req])
            else:
                comm.send(5, 0, tag=1)
                comm.send(None, 0, tag=2)
        tr = run_traced(main, 2).trace
        validate(tr, strict=True)


class TestRandomSparse:
    def test_topology_connected_and_deterministic(self):
        import networkx as nx
        app = RandomSparse(seed=3)
        g1, g2 = app.topology(12), app.topology(12)
        assert nx.is_connected(g1)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_runs_and_validates(self):
        app = RandomSparse(seed=1, iterations=2)
        run = app.trace(nranks=8)
        validate(run.trace, strict=True)
        assert all(r["degree"] >= 1 for r in run.results)

    def test_single_rank(self):
        RandomSparse(seed=0).trace(nranks=1)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RandomSparse(degree=0)
        with pytest.raises(ValueError):
            RandomSparse(min_elements=10, max_elements=5)
        with pytest.raises(ValueError):
            RandomSparse(late_production=1.5)

    @given(seed=st.integers(0, 1000), nranks=st.integers(2, 10),
           degree=st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_property_pipeline_robust_on_random_graphs(self, seed, nranks, degree):
        """Any random topology survives the full pipeline."""
        app = RandomSparse(seed=seed, degree=degree, iterations=2,
                           max_elements=256, work=200_000)
        tr = app.trace(nranks=nranks).trace
        validate(tr, strict=True)
        base = simulate(tr, CFG).duration
        for transform in (overlap_transform, ideal_transform):
            out, _ = transform(tr)
            validate(out, strict=True)
            assert simulate(out, CFG).duration <= base * 1.5
