"""Tests of the extended MPI API (probe, dup, Gatherv/Scatterv, ...)."""

import numpy as np
import pytest

from repro.smpi import ANY_SOURCE, ANY_TAG, Runtime


class TestProbe:
    def test_iprobe_false_before_send(self):
        def main(comm):
            if comm.rank == 0:
                assert not comm.iprobe(1, tag=3)
                comm.send("go", 1)
                comm.recv(1, tag=0)
                assert comm.iprobe(1, tag=3)
                return comm.recv(1, tag=3)
            else:
                comm.recv(0)
                comm.send("probe-me", 0, tag=3)
                comm.send("ack", 0, tag=0)
        out = Runtime(2, main).run()
        assert out[0] == "probe-me"

    def test_blocking_probe_returns_envelope_info(self):
        def main(comm):
            if comm.rank == 0:
                src, tag, size = comm.probe(ANY_SOURCE, ANY_TAG)
                data = comm.recv(src, tag)
                return (src, tag, size, data)
            comm.send(np.zeros(4), 0, tag=9)
        out = Runtime(2, main).run()
        src, tag, size, data = out[0]
        assert (src, tag, size) == (1, 9, 32)
        assert np.allclose(data, 0.0)

    def test_probe_does_not_consume(self):
        def main(comm):
            if comm.rank == 0:
                comm.probe(1)
                comm.probe(1)  # still there
                return comm.recv(1)
            comm.send(42, 0)
        assert Runtime(2, main).run()[0] == 42


class TestSendrecvReplace:
    def test_ring_rotation_in_place(self):
        def main(comm):
            buf = np.full(3, float(comm.rank))
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.Sendrecv_replace(buf, dest=right, sendtag=1,
                                  source=left, recvtag=1)
            return buf[0]
        out = Runtime(4, main).run()
        assert out == [3.0, 0.0, 1.0, 2.0]


class TestDup:
    def test_dup_isolates_traffic(self):
        def main(comm):
            dup = comm.dup()
            assert dup.size == comm.size and dup.rank == comm.rank
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                dup.send("b", 1, tag=1)
            else:
                b = dup.recv(0, tag=1)
                a = comm.recv(0, tag=1)
                return (a, b)
        assert Runtime(2, main).run()[1] == ("a", "b")


class TestGathervScatterv:
    def test_gatherv_variable_blocks(self):
        def main(comm):
            mine = np.full(comm.rank + 1, float(comm.rank))
            if comm.rank == 0:
                out = np.zeros(1 + 2 + 3)
                comm.Gatherv(mine, out, counts=[1, 2, 3], root=0)
                return out.tolist()
            comm.Gatherv(mine, None, root=0)
        out = Runtime(3, main).run()
        assert out[0] == [0.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_gatherv_count_mismatch_detected(self):
        from repro.smpi import RankFailedError
        def main(comm):
            mine = np.zeros(2)
            if comm.rank == 0:
                comm.Gatherv(mine, np.zeros(10), counts=[1, 1], root=0)
            else:
                comm.Gatherv(mine, None, root=0)
        with pytest.raises(RankFailedError, match="disagree"):
            Runtime(2, main).run()

    def test_scatterv_variable_blocks(self):
        def main(comm):
            recv = np.zeros(comm.rank + 1)
            if comm.rank == 0:
                send = np.arange(6.0)
                comm.Scatterv(send, [1, 2, 3], recv, root=0)
            else:
                comm.Scatterv(None, None, recv, root=0)
            return recv.tolist()
        out = Runtime(3, main).run()
        assert out == [[0.0], [1.0, 2.0], [3.0, 4.0, 5.0]]

    def test_scatterv_validation(self):
        from repro.smpi import RankFailedError
        def main(comm):
            comm.Scatterv(None, None, np.zeros(1), root=0)
        with pytest.raises(RankFailedError, match="sendbuf"):
            Runtime(2, main).run()

    def test_roundtrip_scatterv_gatherv(self):
        def main(comm):
            counts = [k + 1 for k in range(comm.size)]
            total = sum(counts)
            recv = np.zeros(comm.rank + 1)
            send = np.arange(float(total)) if comm.rank == 0 else None
            comm.Scatterv(send, counts if comm.rank == 0 else None, recv, root=0)
            recv *= 2
            out = np.zeros(total) if comm.rank == 0 else None
            comm.Gatherv(recv, out, root=0)
            return out.tolist() if comm.rank == 0 else None
        out = Runtime(4, main).run()
        assert out[0] == (np.arange(10.0) * 2).tolist()
