"""Tests of trace slicing/projection/normalization utilities."""

import pytest

from repro.core.transform import overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.trace.filters import (
    merge_bursts,
    repair,
    select_ranks,
    slice_iterations,
    trace_stats,
)
from repro.trace.records import (
    CpuBurst,
    ISend,
    ProcessTrace,
    Recv,
    Send,
    TraceSet,
    Wait,
)
from repro.trace.validate import validate

CFG = MachineConfig(bandwidth_mbps=100.0, latency=5e-6)


class TestMergeBursts:
    def test_adjacent_bursts_coalesce(self):
        ts = TraceSet([ProcessTrace(0, [
            CpuBurst(1.0, instructions=10),
            CpuBurst(2.0, instructions=20),
            Send(peer=0, tag=0, size=0),
            CpuBurst(0.5),
        ])])
        out = merge_bursts(ts)
        recs = out[0].records
        assert len(recs) == 3
        assert recs[0].duration == 3.0 and recs[0].instructions == 30

    def test_transformed_trace_burst_count_shrinks(self, pipeline_trace):
        ov, _ = overlap_transform(pipeline_trace)
        merged = merge_bursts(ov)
        assert merged[1].count(CpuBurst) <= ov[1].count(CpuBurst)
        assert merged.total_virtual_compute() == pytest.approx(
            ov.total_virtual_compute())

    def test_instructions_dropped_when_partial(self):
        ts = TraceSet([ProcessTrace(0, [
            CpuBurst(1.0, instructions=10), CpuBurst(1.0)])])
        assert merge_bursts(ts)[0][0].instructions is None


class TestRepair:
    def test_drops_unmatched_send(self):
        ts = TraceSet([
            ProcessTrace(0, [Send(peer=1, tag=0, size=8)]),
            ProcessTrace(1, []),
        ])
        out = repair(ts)
        assert validate(out).ok
        assert out.total_records() == 0

    def test_strips_dangling_requests(self):
        ts = TraceSet([
            ProcessTrace(0, [ISend(peer=1, tag=0, size=8, request=1)]),
            ProcessTrace(1, [Recv(peer=0, tag=0, size=8)]),
        ])
        out = repair(ts)
        assert validate(out).ok  # the ISend without Wait was dropped

    def test_strips_cut_wait_requests(self):
        ts = TraceSet([
            ProcessTrace(0, [Wait((7,))]),
            ProcessTrace(1, []),
        ])
        out = repair(ts)
        assert validate(out).ok and out.total_records() == 0

    def test_keeps_balanced_structure(self, pipeline_trace):
        out = repair(pipeline_trace)
        assert validate(out).ok
        assert out.total_records() == pipeline_trace.total_records()


class TestSliceIterations:
    def test_slice_validates_and_replays(self, pipeline_trace):
        cut = slice_iterations(pipeline_trace, 0, 2)
        assert validate(cut).ok
        res = simulate(cut, CFG)
        assert res.duration > 0

    def test_slice_is_smaller(self, pipeline_trace):
        cut = slice_iterations(pipeline_trace, 1, 1)
        assert cut.total_records() < pipeline_trace.total_records()
        full = simulate(pipeline_trace, CFG).duration
        part = simulate(cut, CFG).duration
        assert part < full

    def test_slice_meta(self, pipeline_trace):
        cut = slice_iterations(pipeline_trace, 0, 2)
        assert cut.meta["slice"] == (0, 2)

    def test_invalid_count(self, pipeline_trace):
        with pytest.raises(ValueError):
            slice_iterations(pipeline_trace, 0, 0)


class TestSelectRanks:
    def test_projection_renumbers(self, pipeline_trace):
        sub = select_ranks(pipeline_trace, [1, 2])
        assert sub.nranks == 2
        assert validate(sub).ok
        res = simulate(sub, CFG)
        assert res.nranks == 2

    def test_messages_to_dropped_ranks_removed(self, pipeline_trace):
        sub = select_ranks(pipeline_trace, [0])
        assert validate(sub).ok
        stats = trace_stats(sub)
        assert stats["messages"] == 0  # rank 0 only sent outward

    def test_range_validation(self, pipeline_trace):
        with pytest.raises(ValueError):
            select_ranks(pipeline_trace, [99])
        with pytest.raises(ValueError):
            select_ranks(pipeline_trace, [])


class TestTraceStats:
    def test_summary_fields(self, pipeline_trace):
        st = trace_stats(pipeline_trace)
        assert st["nranks"] == 4
        assert st["records"] == pipeline_trace.total_records()
        assert st["messages"] > 0
        assert 0 in st["bytes_per_channel"]
        assert st["virtual_compute_seconds"] > 0
        assert st["record_kinds"]["CpuBurst"] > 0
