"""Stress and robustness tests: extreme configurations must not break
invariants (they may be slow or silly, never wrong)."""

import numpy as np
import pytest

from repro.core.ideal import ideal_transform
from repro.core.transform import overlap_transform
from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.smpi import Runtime
from repro.trace.validate import validate
from repro.tracer import run_traced
from tests.conftest import make_pipeline_app


class TestExtremePlatforms:
    @pytest.fixture(scope="class")
    def trace(self):
        return run_traced(make_pipeline_app(elements=256, work=200_000), 4,
                          mips=1000.0).trace

    @pytest.mark.parametrize("bw", [0.001, 1e9])
    def test_extreme_bandwidths(self, trace, bw):
        res = simulate(trace, MachineConfig(bandwidth_mbps=bw))
        assert res.duration > 0

    def test_zero_latency(self, trace):
        res = simulate(trace, MachineConfig(latency=0.0))
        assert res.duration > 0

    def test_huge_latency_dominates(self, trace):
        slow = simulate(trace, MachineConfig(latency=1.0)).duration
        fast = simulate(trace, MachineConfig(latency=1e-6)).duration
        assert slow > fast + 1.0  # at least one serialized latency

    def test_single_bus_many_ranks(self):
        tr = run_traced(make_pipeline_app(elements=128, work=50_000), 8,
                        mips=1000.0).trace
        res = simulate(tr, MachineConfig(buses=1))
        assert res.duration > 0
        assert res.network_stats["peak_active_transfers"] == 1

    def test_everything_rendezvous(self, trace):
        res = simulate(trace, MachineConfig(eager_threshold=0))
        assert res.duration > 0

    def test_cpu_ratio_scales_linearly(self, trace):
        base = simulate(trace, MachineConfig(bandwidth_mbps=1e6,
                                             latency=0.0)).duration
        double = simulate(trace, MachineConfig(bandwidth_mbps=1e6,
                                               latency=0.0,
                                               cpu_ratio=2.0)).duration
        assert double == pytest.approx(2 * base, rel=0.01)


class TestExtremeTransforms:
    def test_256_chunks(self):
        tr = run_traced(make_pipeline_app(elements=1024, work=500_000), 3,
                        mips=1000.0).trace
        out, stats = overlap_transform(tr, chunks=256)
        validate(out, strict=True)
        assert simulate(out, MachineConfig()).duration > 0

    def test_more_chunks_than_elements(self):
        tr = run_traced(make_pipeline_app(elements=3, work=100_000), 2,
                        mips=1000.0).trace
        out, stats = overlap_transform(tr, chunks=64)
        validate(out, strict=True)
        # chunk count capped at the element count
        per_msg = stats.chunks_created / max(stats.messages_transformed, 1)
        assert per_msg <= 3

    def test_transform_of_communication_free_trace(self):
        tr = run_traced(lambda c: c.compute(1000), 4).trace
        out, stats = overlap_transform(tr)
        assert stats.messages_total == 0
        assert simulate(out, MachineConfig()).duration > 0

    def test_zero_work_pipeline(self):
        tr = run_traced(make_pipeline_app(work=0), 3).trace
        for transform in (overlap_transform, ideal_transform):
            out, _ = transform(tr)
            validate(out, strict=True)
            simulate(out, MachineConfig())


class TestScaleStress:
    def test_many_ranks_functional(self):
        """128 cooperative threads: ring allreduce still correct."""
        def main(comm):
            return comm.allreduce(1)
        out = Runtime(128, main).run()
        assert out == [128] * 128

    def test_many_small_messages(self):
        def main(comm):
            other = 1 - comm.rank
            for k in range(300):
                if comm.rank == 0:
                    comm.send(k, other, tag=k % 7)
                else:
                    assert comm.recv(0, tag=k % 7) == k
        Runtime(2, main).run()

    def test_large_payloads_value_semantics(self):
        def main(comm):
            if comm.rank == 0:
                big = np.arange(2_000_00, dtype=np.float64)
                comm.send(big, 1)
                big[:] = -1
            else:
                got = comm.recv(0)
                return float(got[-1])
        out = Runtime(2, main).run()
        assert out[1] == 2_000_00 - 1
