"""Collective semantics (decomposed point-to-point algorithms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smpi import Runtime
from repro.smpi.collectives import combine

SIZES = [1, 2, 3, 4, 5, 7, 8]


@pytest.mark.parametrize("size", SIZES)
class TestPerSize:
    def test_bcast_from_every_root(self, size):
        for root in range(size):
            def main(c, root=root):
                obj = {"v": 42} if c.rank == root else None
                return c.bcast(obj, root=root)
            assert Runtime(size, main).run() == [{"v": 42}] * size

    def test_reduce_sum(self, size):
        def main(c):
            return c.reduce(c.rank + 1, op="sum", root=0)
        out = Runtime(size, main).run()
        assert out[0] == size * (size + 1) // 2
        assert all(v is None for v in out[1:])

    def test_allreduce_max(self, size):
        def main(c):
            return c.allreduce(c.rank * 2, op="max")
        assert Runtime(size, main).run() == [2 * (size - 1)] * size

    def test_gather(self, size):
        def main(c):
            return c.gather(chr(65 + c.rank), root=size - 1)
        out = Runtime(size, main).run()
        assert out[size - 1] == [chr(65 + r) for r in range(size)]

    def test_scatter(self, size):
        def main(c):
            vals = [r * r for r in range(size)] if c.rank == 0 else None
            return c.scatter(vals, root=0)
        assert Runtime(size, main).run() == [r * r for r in range(size)]

    def test_allgather(self, size):
        def main(c):
            return c.allgather(c.rank)
        assert Runtime(size, main).run() == [list(range(size))] * size

    def test_alltoall(self, size):
        def main(c):
            out = c.alltoall([(c.rank, d) for d in range(size)])
            return out
        res = Runtime(size, main).run()
        for r, got in enumerate(res):
            assert got == [(s, r) for s in range(size)]

    def test_barrier_completes(self, size):
        def main(c):
            c.barrier()
            return True
        assert all(Runtime(size, main).run())

    def test_reduce_scatter(self, size):
        def main(c):
            return c.reduce_scatter([float(d) for d in range(size)])
        out = Runtime(size, main).run()
        assert out == [pytest.approx(r * size) for r in range(size)]


class TestArrayCollectives:
    def test_allreduce_arrays_elementwise(self):
        def main(c):
            return c.allreduce(np.arange(4.0) + c.rank)
        out = Runtime(3, main).run()
        expect = 3 * np.arange(4.0) + 3
        for a in out:
            assert np.allclose(a, expect)

    def test_Allreduce_into_recvbuf(self):
        def main(c):
            s = np.full(3, float(c.rank + 1))
            r = np.zeros(3)
            c.Allreduce(s, r)
            return r.tolist()
        assert Runtime(4, main).run() == [[10.0, 10.0, 10.0]] * 4

    def test_Bcast_in_place(self):
        def main(c):
            buf = np.arange(5.0) if c.rank == 2 else np.zeros(5)
            c.Bcast(buf, root=2)
            return buf.tolist()
        assert Runtime(4, main).run() == [list(np.arange(5.0))] * 4

    def test_reduce_min_arrays(self):
        def main(c):
            return c.allreduce(np.array([float(c.rank), -float(c.rank)]), op="min")
        out = Runtime(3, main).run()
        assert np.allclose(out[0], [0.0, -2.0])


class TestCombine:
    @pytest.mark.parametrize("op,a,b,expect", [
        ("sum", 2, 3, 5),
        ("prod", 2, 3, 6),
        ("max", 2, 3, 3),
        ("min", 2, 3, 2),
    ])
    def test_scalar_ops(self, op, a, b, expect):
        assert combine(op, a, b) == expect

    def test_array_not_in_place(self):
        a, b = np.ones(3), np.ones(3)
        out = combine("sum", a, b)
        assert np.allclose(out, 2) and np.allclose(a, 1)

    def test_callable_op(self):
        assert combine(lambda x, y: x - y, 10, 4) == 6

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            combine("xor", 1, 2)
        with pytest.raises(ValueError):
            combine("xor", np.ones(1), np.ones(1))


class TestErrors:
    def test_scatter_wrong_length(self):
        from repro.smpi import RankFailedError
        def main(c):
            c.scatter([1], root=0)
        with pytest.raises(RankFailedError):
            Runtime(2, main).run()

    def test_alltoall_wrong_length(self):
        from repro.smpi import RankFailedError
        def main(c):
            c.alltoall([1])
        with pytest.raises(RankFailedError):
            Runtime(2, main).run()


@given(size=st.integers(1, 6), seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_property_allreduce_equals_numpy_sum(size, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=size)
    def main(c):
        return c.allreduce(float(values[c.rank]))
    out = Runtime(size, main).run()
    for v in out:
        assert v == pytest.approx(values.sum(), rel=1e-12, abs=1e-12)


@given(size=st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_property_alltoall_is_transpose(size):
    def main(c):
        return c.alltoall([c.rank * size + d for d in range(size)])
    res = Runtime(size, main).run()
    mat = np.array(res)
    expect = np.arange(size * size).reshape(size, size).T
    assert np.array_equal(mat, expect)
