"""Kill-and-resume matrix against the chaos driver (``tests/chaos.py``).

Each scenario runs the driver as a real subprocess, kills it at a
chosen or randomized instant (SIGKILL — no cleanup, no atexit), then
re-invokes it with ``--resume`` and asserts:

* the resumed campaign's final table is **bitwise-identical** to an
  uninterrupted run's, and
* **zero re-execution** of journaled points: in the final session,
  ``checkpoint.replayed`` equals the journal's entry count at resume
  and ``checkpoint.replayed + engine.points_executed`` covers the
  whole grid.

Also covers the graceful-drain contract: SIGTERM → journal in-flight,
exit code 5, resumable.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import replay_journal

DRIVER = Path(__file__).resolve().parent / "chaos.py"
TOTAL_POINTS = 8  # len(chaos.campaign_points())
SIGKILLED = -signal.SIGKILL


def scrubbed_env(extra: dict | None = None) -> dict:
    """Inherited env minus any chaos hooks a caller left armed."""
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_TEST_")}
    env.update(extra or {})
    return env


class DriverRun:
    """Outcome of one chaos-driver invocation."""

    def __init__(self, returncode: int, stdout: str, stderr: str):
        self.returncode = returncode
        self.stdout = stdout
        self.stderr = stderr


def invoke(workdir: Path, *, resume: str | None = None,
           env: dict | None = None, jobs: int = 1):
    """Run the chaos driver to completion; return (run, run_id).

    Output goes to files, not pipes: a SIGKILLed driver can leave
    orphaned pool workers holding inherited pipe ends, which would
    stall a ``communicate()``-style wait for EOF indefinitely.
    """
    cmd = [
        sys.executable, str(DRIVER),
        "--obs-dir", str(workdir / "obs"),
        "--cache-dir", str(workdir / "cache"),
        "--out", str(workdir / "table.txt"),
        "--metrics-json", str(workdir / "metrics.json"),
        "--jobs", str(jobs),
    ]
    if resume:
        cmd += ["--resume", resume]
    out_path = workdir / "driver-stdout.log"
    err_path = workdir / "driver-stderr.log"
    with open(out_path, "w") as out, open(err_path, "w") as err:
        proc = subprocess.Popen(cmd, stdout=out, stderr=err,
                                env=scrubbed_env(env),
                                start_new_session=True)
        try:
            returncode = proc.wait(timeout=120)
        finally:
            # Reap any orphaned pool workers a SIGKILLed driver left
            # behind — they must not keep draining the call queue while
            # the resumed campaign runs.
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    run = DriverRun(returncode, out_path.read_text(),
                    err_path.read_text())
    run_id = None
    for line in run.stdout.splitlines():
        if line.startswith("run-id: "):
            run_id = line.removeprefix("run-id: ").strip()
            break
    return run, run_id


def journal_path(workdir: Path, run_id: str) -> Path:
    return workdir / "obs" / run_id / "journal.jsonl"


def journaled_points(workdir: Path, run_id: str) -> int:
    """Unique journaled completions that a resume can serve."""
    path = journal_path(workdir, run_id)
    if not path.exists():
        return 0
    entries, _, _ = replay_journal(path)
    return len(entries)


def final_metrics(workdir: Path) -> dict:
    return json.loads((workdir / "metrics.json").read_text())


def assert_resumed_clean(workdir: Path, run_id: str, baseline: str,
                         served: int) -> None:
    """The post-resume invariants every scenario shares."""
    assert (workdir / "table.txt").read_text() == baseline
    metrics = final_metrics(workdir)
    replayed = metrics.get("checkpoint.replayed", 0)
    executed = metrics.get("engine.points_executed", 0)
    # Zero re-execution: every journaled point was served, not re-run,
    # and together they cover the whole grid.
    assert replayed == served
    assert replayed + executed == TOTAL_POINTS


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> str:
    """Final table of an uninterrupted campaign (the bitwise oracle)."""
    workdir = tmp_path_factory.mktemp("chaos-baseline")
    proc, run_id = invoke(workdir)
    assert proc.returncode == 0, proc.stderr
    metrics = final_metrics(workdir)
    assert metrics["checkpoint.journaled"] == TOTAL_POINTS
    assert metrics["engine.points_executed"] == TOTAL_POINTS
    return (workdir / "table.txt").read_text()


class TestKillAndResume:
    def test_sigkill_pre_dispatch(self, tmp_path, baseline):
        proc, run_id = invoke(
            tmp_path, env={"REPRO_TEST_SELFKILL_BEFORE_DISPATCH": "1"})
        assert proc.returncode == SIGKILLED
        assert run_id is not None
        assert journaled_points(tmp_path, run_id) == 0

        proc, _ = invoke(tmp_path, resume=run_id)
        assert proc.returncode == 0, proc.stderr
        assert_resumed_clean(tmp_path, run_id, baseline, served=0)

    @pytest.mark.parametrize("after", [1, 3, 7])
    def test_sigkill_mid_campaign_after_nth_journal_append(
            self, tmp_path, baseline, after):
        proc, run_id = invoke(
            tmp_path,
            env={"REPRO_TEST_SELFKILL_AFTER_APPEND": str(after)})
        assert proc.returncode == SIGKILLED
        served = journaled_points(tmp_path, run_id)
        assert served == after  # the kill landed right after the append

        proc, _ = invoke(tmp_path, resume=run_id)
        assert proc.returncode == 0, proc.stderr
        assert_resumed_clean(tmp_path, run_id, baseline, served=served)

    def test_sigkill_post_journal_full_grid(self, tmp_path, baseline):
        """Killed after the last append: resume re-executes *nothing*."""
        proc, run_id = invoke(
            tmp_path,
            env={"REPRO_TEST_SELFKILL_AFTER_APPEND": str(TOTAL_POINTS)})
        assert proc.returncode == SIGKILLED
        assert journaled_points(tmp_path, run_id) == TOTAL_POINTS

        proc, _ = invoke(tmp_path, resume=run_id)
        assert proc.returncode == 0, proc.stderr
        assert_resumed_clean(tmp_path, run_id, baseline,
                             served=TOTAL_POINTS)
        assert final_metrics(tmp_path).get("engine.points_executed", 0) == 0

    def test_sigkill_at_randomized_instant(self, tmp_path, baseline):
        """The acceptance scenario: SIGKILL at a random instant, resume,
        bitwise-identical table, zero re-execution of journaled points."""
        rng = random.Random(0xC4A05)
        for trial in range(3):
            workdir = tmp_path / f"trial{trial}"
            workdir.mkdir()
            cmd = [
                sys.executable, str(DRIVER),
                "--obs-dir", str(workdir / "obs"),
                "--cache-dir", str(workdir / "cache"),
                "--out", str(workdir / "table.txt"),
                "--metrics-json", str(workdir / "metrics.json"),
            ]
            proc = subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=scrubbed_env(), start_new_session=True)
            first = proc.stdout.readline()
            assert first.startswith("run-id: ")
            run_id = first.removeprefix("run-id: ").strip()
            time.sleep(rng.uniform(0.0, 0.4))
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass  # campaign finished before the kill landed
            proc.communicate(timeout=60)

            if proc.returncode == 0:
                # Outran the kill: already a complete, identical table.
                assert (workdir / "table.txt").read_text() == baseline
                continue
            assert proc.returncode == SIGKILLED
            served = journaled_points(workdir, run_id)
            proc2, _ = invoke(workdir, resume=run_id)
            assert proc2.returncode == 0, proc2.stderr
            assert_resumed_clean(workdir, run_id, baseline, served=served)

    def test_sigkill_and_resume_with_worker_pool(self, tmp_path, baseline):
        proc, run_id = invoke(
            tmp_path, jobs=2,
            env={"REPRO_TEST_SELFKILL_AFTER_APPEND": "2"})
        assert proc.returncode == SIGKILLED
        served = journaled_points(tmp_path, run_id)
        assert served >= 2

        proc, _ = invoke(tmp_path, resume=run_id, jobs=2)
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "table.txt").read_text() == baseline
        metrics = final_metrics(tmp_path)
        assert metrics.get("checkpoint.replayed", 0) == served


class TestGracefulDrain:
    def test_sigterm_drains_to_exit_5_then_resume(self, tmp_path, baseline):
        proc, run_id = invoke(
            tmp_path, env={"REPRO_TEST_CHAOS_SELF_SIGTERM": "1"})
        assert proc.returncode == 5, (proc.stdout, proc.stderr)
        assert "interrupted" in proc.stderr
        # The drain journaled whatever was in flight and stopped cleanly.
        served = journaled_points(tmp_path, run_id)
        assert served < TOTAL_POINTS

        proc, _ = invoke(tmp_path, resume=run_id)
        assert proc.returncode == 0, proc.stderr
        assert_resumed_clean(tmp_path, run_id, baseline, served=served)

    def test_interrupted_run_is_listed_as_resumable(self, tmp_path):
        proc, run_id = invoke(
            tmp_path, env={"REPRO_TEST_CHAOS_SELF_SIGTERM": "1"})
        assert proc.returncode == 5
        from repro.experiments import list_runs
        runs = {r["run_id"]: r for r in list_runs(tmp_path / "obs")}
        assert runs[run_id]["resumable"]
        assert runs[run_id]["status"] == "interrupted"
