"""Point-to-point semantics of the simulated runtime."""

import numpy as np
import pytest

from repro.smpi import ANY_SOURCE, ANY_TAG, Runtime
from repro.smpi.datatypes import measure


class TestBlocking:
    def test_object_send_recv(self):
        def main(c):
            if c.rank == 0:
                c.send({"k": [1, 2]}, 1)
            else:
                return c.recv(0)
        assert Runtime(2, main).run()[1] == {"k": [1, 2]}

    def test_array_send_recv_into_buffer(self):
        def main(c):
            if c.rank == 0:
                c.Send(np.arange(8.0), 1, tag=2)
            else:
                buf = np.zeros(8)
                c.Recv(buf, 0, tag=2)
                return buf.sum()
        assert Runtime(2, main).run()[1] == pytest.approx(28.0)

    def test_value_semantics_on_send(self):
        """Mutating the buffer after send must not affect the receiver."""
        def main(c):
            if c.rank == 0:
                a = np.ones(4)
                c.send(a, 1)
                a[:] = 99.0
            else:
                return c.recv(0).sum()
        assert Runtime(2, main).run()[1] == pytest.approx(4.0)

    def test_tag_selectivity(self):
        def main(c):
            if c.rank == 0:
                c.send("low", 1, tag=1)
                c.send("high", 1, tag=2)
            else:
                high = c.recv(0, tag=2)
                low = c.recv(0, tag=1)
                return (low, high)
        assert Runtime(2, main).run()[1] == ("low", "high")

    def test_fifo_non_overtaking_same_key(self):
        def main(c):
            if c.rank == 0:
                for k in range(5):
                    c.send(k, 1, tag=0)
            else:
                return [c.recv(0, tag=0) for _ in range(5)]
        assert Runtime(2, main).run()[1] == [0, 1, 2, 3, 4]

    def test_any_source_any_tag(self):
        def main(c):
            if c.rank == 0:
                vals = sorted(c.recv(ANY_SOURCE, ANY_TAG) for _ in range(2))
                return vals
            c.send(c.rank * 10, 0, tag=c.rank)
        assert Runtime(3, main).run()[0] == [10, 20]

    def test_invalid_peer_rejected(self):
        from repro.smpi import RankFailedError
        def main(c):
            c.send(1, 5)
        with pytest.raises(RankFailedError, match="out of range"):
            Runtime(2, main).run()

    def test_sendrecv(self):
        def main(c):
            other = 1 - c.rank
            return c.sendrecv(f"from{c.rank}", other, sendtag=1,
                              source=other, recvtag=1)
        assert Runtime(2, main).run() == ["from1", "from0"]


class TestNonBlocking:
    def test_isend_wait_returns_none_payload(self):
        def main(c):
            if c.rank == 0:
                req = c.isend([1, 2], 1)
                assert req.wait() is None
            else:
                return c.recv(0)
        assert Runtime(2, main).run()[1] == [1, 2]

    def test_irecv_wait_returns_payload(self):
        def main(c):
            if c.rank == 0:
                c.send("x", 1)
            else:
                return c.irecv(0).wait()
        assert Runtime(2, main).run()[1] == "x"

    def test_irecv_into_buffer(self):
        def main(c):
            if c.rank == 0:
                c.Send(np.full(3, 7.0), 1)
            else:
                buf = np.zeros(3)
                req = c.Irecv(buf, 0)
                c.wait(req)
                return buf.tolist()
        assert Runtime(2, main).run()[1] == [7.0, 7.0, 7.0]

    def test_waitall_multiple(self):
        def main(c):
            if c.rank == 0:
                reqs = [c.irecv(1, tag=t) for t in (1, 2, 3)]
                return c.waitall(reqs)
            for t in (3, 1, 2):
                c.send(t * 100, 0, tag=t)
        assert Runtime(2, main).run()[0] == [100, 200, 300]

    def test_test_polling(self):
        def main(c):
            if c.rank == 0:
                req = c.irecv(1)
                # not yet arrived: test() may be False, never raises
                req.test()
                c.send("go", 1)
                val = c.wait(req)
                return val
            else:
                assert c.recv(0) == "go" or True
                got = c.recv(0)
                c.send("answer", 0)
                return got
        # rank1 receives "go" then sends; rank0 gets "answer"
        def main2(c):
            if c.rank == 0:
                req = c.irecv(1)
                assert req.test() is False
                c.send("go", 1)
                return c.wait(req)
            else:
                c.recv(0)
                c.send("answer", 0)
        assert Runtime(2, main2).run()[0] == "answer"

    def test_empty_waitall(self):
        def main(c):
            return c.waitall([])
        assert Runtime(1, main).run() == [[]]

    def test_request_done_flag(self):
        def main(c):
            if c.rank == 0:
                req = c.isend(1, 1)
                assert req.done  # buffered sends complete immediately
            else:
                req = c.irecv(0)
                c.wait(req)
                assert req.done
        Runtime(2, main).run()


class TestMeasure:
    def test_ndarray(self):
        assert measure(np.zeros(10)) == (80, 10, 8)

    def test_none_is_pure_sync(self):
        assert measure(None) == (0, 0, 1)

    def test_bytes(self):
        assert measure(b"abcd") == (4, 4, 1)

    def test_scalar(self):
        assert measure(3.14) == (8, 1, 8)

    def test_object_uses_pickle_length(self):
        size, elements, elem = measure({"a": 1})
        assert size > 0 and elements == 1 and elem == size
