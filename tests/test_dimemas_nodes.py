"""Tests of the multi-core SMP node model."""

import pytest

from repro.dimemas.machine import MachineConfig
from repro.dimemas.replay import simulate
from repro.trace.records import ProcessTrace, Recv, Send, TraceSet

US = 1e-6


def ts(*rank_records) -> TraceSet:
    return TraceSet([ProcessTrace(r, list(recs))
                     for r, recs in enumerate(rank_records)])


def pair_trace():
    return ts(
        [Send(peer=1, tag=0, size=1000)],
        [Recv(peer=0, tag=0, size=1000)],
    )


class TestNodeMapping:
    def test_node_of(self):
        cfg = MachineConfig(cores_per_node=4)
        assert cfg.node_of(0) == 0 and cfg.node_of(3) == 0
        assert cfg.node_of(4) == 1

    def test_same_node(self):
        cfg = MachineConfig(cores_per_node=2)
        assert cfg.same_node(0, 1)
        assert not cfg.same_node(1, 2)

    def test_default_is_one_process_per_node(self):
        cfg = MachineConfig()
        assert not cfg.same_node(0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(cores_per_node=0)
        with pytest.raises(ValueError):
            MachineConfig(intra_latency=-1.0)
        with pytest.raises(ValueError):
            MachineConfig(intra_bandwidth_mbps=0.0)

    def test_default_intra_bandwidth_is_4x(self):
        cfg = MachineConfig(bandwidth_mbps=100.0)
        assert cfg.intra_bandwidth == pytest.approx(4 * 100e6)

    def test_explicit_intra_bandwidth(self):
        cfg = MachineConfig(intra_bandwidth_mbps=1000.0)
        assert cfg.intra_bandwidth == pytest.approx(1e9)


class TestIntraNodeTiming:
    def test_shared_memory_transfer_faster(self):
        inter = MachineConfig(bandwidth_mbps=100.0, latency=10e-6)
        intra = MachineConfig(bandwidth_mbps=100.0, latency=10e-6,
                              cores_per_node=2, intra_latency=1e-6)
        d_inter = simulate(pair_trace(), inter).duration
        d_intra = simulate(pair_trace(), intra).duration
        # inter: 10 wire + 10 lat = 20us; intra: 2.5 copy + 1 lat = 3.5us
        assert d_inter == pytest.approx(20 * US)
        assert d_intra == pytest.approx(3.5 * US)

    def test_intra_node_bypasses_buses(self):
        """Two same-node pairs proceed in parallel even with one bus."""
        cfg = MachineConfig(bandwidth_mbps=100.0, latency=10e-6,
                            cores_per_node=2, buses=1, intra_latency=0.0)
        four = ts(
            [Send(peer=1, tag=0, size=4000)],
            [Recv(peer=0, tag=0, size=4000)],
            [Send(peer=3, tag=0, size=4000)],
            [Recv(peer=2, tag=0, size=4000)],
        )
        res = simulate(four, cfg)
        # both copies take 10us (400MB/s), concurrently
        assert res.duration == pytest.approx(10 * US)

    def test_cross_node_still_uses_network(self):
        cfg = MachineConfig(bandwidth_mbps=100.0, latency=10e-6,
                            cores_per_node=2)
        cross = ts(
            [Send(peer=2, tag=0, size=1000)],
            [],
            [Recv(peer=0, tag=0, size=1000)],
        )
        res = simulate(cross, cfg)
        assert res.duration == pytest.approx(20 * US)

    def test_smp_speeds_up_neighbor_heavy_app(self):
        """Packing a pipeline onto SMP nodes removes most network trips."""
        from tests.conftest import make_pipeline_app
        from repro.tracer import run_traced
        tr = run_traced(make_pipeline_app(elements=2048, work=50_000), 8,
                        mips=1000.0).trace
        flat = MachineConfig(bandwidth_mbps=50.0, latency=20e-6)
        smp = MachineConfig(bandwidth_mbps=50.0, latency=20e-6,
                            cores_per_node=4, intra_latency=1e-6)
        assert simulate(tr, smp).duration < simulate(tr, flat).duration
